"""Condition templates: how a class's token rate θ is derived.

The paper (§IV-C) drives all bandwidth distribution through one knob —
the token fill rate of each class's bucket, recomputed at every update
epoch from *measured* sibling behaviour:

* Eq. 2 — a user-specified bandwidth maps linearly to a token rate
  (we keep rates in bit/s; see :mod:`.token_bucket` for the unit note);
* Eq. 4 — priority: a less-prior class gets the parent rate minus the
  measured consumption Γ of its prior siblings;
* Eq. 5 — weight: siblings split the parent rate proportionally;
* §IV-C3 — other conditions (ceilings, guarantees) compose with these.

``SiblingShare`` implements the general computation (priority groups +
weights + guarantee reservations + the guarantee-threshold fallback of
the motivation example); the named rule classes are thin views over it
that exist so each paper equation has a directly-testable object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sched_tree import ClassNode

__all__ = [
    "RuleContext",
    "RateRule",
    "FixedRate",
    "FullParentRate",
    "WeightedShare",
    "PriorityResidual",
    "GuaranteedResidual",
    "SiblingShare",
    "CeilCap",
]

#: Effective priority of a class with no ``prio`` option: lower numbers
#: are served first, so "no priority" sorts after every numbered class.
NO_PRIO = math.inf


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule may look at when computing θ.

    ``node`` is the class being re-rated; ``now`` is the update epoch
    timestamp. Rules read *published* sibling state (θ, Γ, activity) —
    mirroring that on the NIC they read shared memory written by other
    cores' update stages, which is what produces the propagation delay
    analysed in Fig. 10.
    """

    node: "ClassNode"
    now: float

    @property
    def parent_theta(self) -> float:
        """θ of the parent class (the root reads its own fixed rate)."""
        parent = self.node.parent
        if parent is None:
            return self.node.theta
        return parent.theta


class RateRule:
    """Base class: ``compute`` returns the new token rate in bit/s."""

    def compute(self, ctx: RuleContext) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return type(self).__name__


class FixedRate(RateRule):
    """θ is a constant — Eq. 2's direct conversion of a user-specified
    bandwidth. Used for root classes (the link/ceiling rate)."""

    def __init__(self, rate_bps: float):
        if rate_bps < 0:
            raise ValueError(f"rate must be non-negative, got {rate_bps}")
        self.rate_bps = rate_bps

    def compute(self, ctx: RuleContext) -> float:
        return self.rate_bps

    def describe(self) -> str:
        return f"fixed({self.rate_bps:.0f}bps)"


class FullParentRate(RateRule):
    """θ = θ_parent — the unrestricted highest-priority class (NC in
    the motivation example may consume any amount of available tokens)."""

    def compute(self, ctx: RuleContext) -> float:
        return ctx.parent_theta

    def describe(self) -> str:
        return "full-parent"


def _eff_prio(node: "ClassNode") -> float:
    prio = node.spec.prio
    return NO_PRIO if prio is None else float(prio)


def _guarantee_regime(peers: List["ClassNode"], parent_theta: float) -> bool:
    """True when priority+guarantee semantics apply; False when the
    parent rate is below every guaranteed sibling's threshold, which
    suspends priorities in favour of plain weighted sharing (the
    "ML and KVS share 1:1 below 4 Gbps" condition)."""
    thresholds = [
        peer.spec.guarantee_threshold
        for peer in peers
        if peer.spec.guarantee is not None and peer.spec.guarantee_threshold is not None
    ]
    if not thresholds:
        return True
    return parent_theta >= max(thresholds)


def sibling_share(node: "ClassNode", parent_theta: float, now: float) -> float:
    """The general sibling computation (see module docstring).

    Walks the parent's children in priority order. Classes in groups
    more prior than *node* subtract their measured consumption Γ from
    the available rate (Eq. 4); *node*'s own group splits the remainder
    by weight (Eq. 5) after reserving the guarantees of *active*
    less-prior siblings; finally *node*'s own guarantee floors the
    result.
    """
    parent = node.parent
    if parent is None:
        return parent_theta
    peers = parent.children

    if not _guarantee_regime(peers, parent_theta):
        # Guarantee threshold not met: plain weighted sharing across
        # every sibling, priorities suspended.
        total_weight = sum(peer.spec.weight for peer in peers)
        return parent_theta * node.spec.weight / total_weight

    my_prio = _eff_prio(node)
    available = parent_theta

    # Subtract the measured demand of strictly more-prior siblings.
    # The estimator is the decaying *peak* of their per-epoch usage:
    # a prior TCP flow's sawtooth troughs are not spare bandwidth.
    for peer in peers:
        if peer is node:
            continue
        if _eff_prio(peer) < my_prio:
            available -= max(peer.gamma_rate, peer.gamma_peak) if peer.is_active(now) else 0.0
    available = max(0.0, available)

    # Reserve guarantees of strictly less-prior siblings that are
    # actively sending (an idle class's guarantee costs nothing).
    reserved = 0.0
    for peer in peers:
        if peer is node:
            continue
        if _eff_prio(peer) > my_prio and peer.spec.guarantee is not None and peer.is_active(now):
            reserved += min(peer.spec.guarantee, available - reserved)
    share_base = max(0.0, available - reserved)

    # Split within the equal-priority group by weight.
    group = [peer for peer in peers if _eff_prio(peer) == my_prio]
    group_weight = sum(peer.spec.weight for peer in group)
    theta = share_base * node.spec.weight / group_weight

    # Own guarantee floors the result. The floor is taken against the
    # parent rate, not the residual: a transiently greedy prior sibling
    # must not be able to squeeze the guarantee to zero (it will see the
    # reservation in its own next update and back off — the convergence
    # dynamic of Fig. 10).
    if node.spec.guarantee is not None:
        theta = max(theta, min(node.spec.guarantee, parent_theta))
    return theta


class SiblingShare(RateRule):
    """The workhorse rule: priority groups + weights + guarantees."""

    def compute(self, ctx: RuleContext) -> float:
        return sibling_share(ctx.node, ctx.parent_theta, ctx.now)

    def describe(self) -> str:
        return "sibling-share"


class WeightedShare(SiblingShare):
    """Eq. 5 — θ_child = θ_parent × w (weights normalised over the
    sibling group). A documented alias of :class:`SiblingShare` for
    nodes that configure only weights."""

    def describe(self) -> str:
        return "weighted-share"


class PriorityResidual(SiblingShare):
    """Eq. 4 — θ = θ_parent − Σ Γ_prior, the residual left by strictly
    more-prior siblings. A documented alias of :class:`SiblingShare`
    for nodes that configure priorities."""

    def describe(self) -> str:
        return "priority-residual"


class GuaranteedResidual(SiblingShare):
    """§II's conditional guarantee: at least ``guarantee`` bit/s when
    the parent rate exceeds the threshold, weighted sharing below it.
    A documented alias of :class:`SiblingShare` for guaranteed nodes."""

    def describe(self) -> str:
        return "guaranteed-residual"


class CeilCap(RateRule):
    """Wraps another rule and clamps its result to a ceiling —
    §IV-C3's "restrict NC's ceiling bandwidth to ¾·B" template."""

    def __init__(self, inner: RateRule, ceil_bps: float):
        if ceil_bps <= 0:
            raise ValueError(f"ceil must be positive, got {ceil_bps}")
        self.inner = inner
        self.ceil_bps = ceil_bps

    def compute(self, ctx: RuleContext) -> float:
        return min(self.inner.compute(ctx), self.ceil_bps)

    def describe(self) -> str:
        return f"min({self.inner.describe()}, {self.ceil_bps:.0f}bps)"


def derive_rule(node: "ClassNode") -> RateRule:
    """Select the condition template for *node* from its spec —
    the paper's "appropriate calculations are selected for concrete
    user policies".

    * root → :class:`FixedRate` at its configured rate (or ceil);
    * sole child with a priority and no guarantee/weight siblings at
      higher priority → behaves as :class:`FullParentRate` through the
      general computation;
    * otherwise → :class:`SiblingShare`;
    * a configured ``ceil`` wraps the result in :class:`CeilCap`.
    """
    spec = node.spec
    if node.parent is None:
        base_rate = spec.ceil if spec.ceil is not None else spec.rate
        # Root grant leaves a little slack below the configured rate so
        # the shared Tx FIFO can drain between bursts (see
        # SchedulingParams.link_headroom).
        rule: RateRule = FixedRate(base_rate * (1.0 - node.params.link_headroom))
    else:
        rule = SiblingShare()
    if node.parent is not None and spec.ceil is not None:
        rule = CeilCap(rule, spec.ceil)
    return rule


__all__.append("derive_rule")
__all__.append("sibling_share")
