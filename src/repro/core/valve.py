"""The :class:`FlowValve` facade.

One object that ties the front end and back end together for software
use: feed it packets, it labels them, runs Algorithm 1, and returns the
verdict. This is the reference execution mode — the cycle-accurate
NP-embedded execution lives in :mod:`repro.nic.pipeline`, which reuses
the same labeler and scheduling function objects exposed here.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import Packet
from ..tc.ast import PolicyConfig
from .frontend import FlowValveFrontend
from .sched_tree import SchedulingParams
from .scheduling import Verdict

__all__ = ["FlowValve"]


class FlowValve:
    """The offloaded classifier + scheduler, software reference mode.

    >>> valve = FlowValve.from_script('''
    ...     fv qdisc add dev eth0 root handle 1: htb default 10
    ...     fv class add dev eth0 parent 1: classid 1:1 fv rate 10gbit
    ...     fv class add dev eth0 parent 1:1 classid 1:10 fv rate 10gbit
    ... ''', link_rate_bps=10e9)

    Then per packet: ``valve.process(packet, now)`` → FORWARD/DROP.
    """

    def __init__(
        self,
        policy: PolicyConfig,
        link_rate_bps: Optional[float] = None,
        params: Optional[SchedulingParams] = None,
        cache_size: int = 65536,
    ):
        self.frontend = FlowValveFrontend(policy, link_rate_bps, params, cache_size)

    @classmethod
    def from_script(
        cls,
        script: str,
        link_rate_bps: Optional[float] = None,
        params: Optional[SchedulingParams] = None,
        cache_size: int = 65536,
    ) -> "FlowValve":
        """Build a valve from ``fv`` commands (see §III-E)."""
        from ..tc.parser import parse_script

        return cls(parse_script(script), link_rate_bps, params, cache_size)

    # convenient aliases -------------------------------------------------
    @property
    def tree(self):
        """The scheduling tree."""
        return self.frontend.tree

    @property
    def labeler(self):
        """The labeling function."""
        return self.frontend.labeler

    @property
    def scheduler(self):
        """The scheduling function (Algorithm 1)."""
        return self.frontend.scheduler

    @property
    def stats(self):
        """Scheduling statistics."""
        return self.frontend.scheduler.stats

    def attach_observability(self, tracer=None, metrics=None) -> None:
        """Wire a tracer / metrics registry into the scheduling core."""
        self.frontend.attach_observability(tracer, metrics)

    # ------------------------------------------------------------------
    def process(self, packet: Packet, now: float) -> Verdict:
        """Label then schedule one packet; the packet is marked dropped
        on a DROP verdict (including unclassifiable packets)."""
        label = self.frontend.labeler.label(packet, now)
        if label is None:
            return Verdict.DROP
        return self.frontend.scheduler.decide(packet, now)

    def describe(self) -> str:
        """Status text for CLI/report output."""
        return self.frontend.describe()
