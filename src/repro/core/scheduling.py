"""The scheduling function — Algorithm 1 of the paper.

For each packet, walk its hierarchy class label root-to-leaf:

1. per class, *try* to grab the update lock; the winner refreshes the
   token bucket (replenish at the recomputed θ, roll Γ, publish the
   lendable rate) and releases — losers skip straight on (this is what
   keeps the function parallel across cores);
2. meter the packet against the **leaf** bucket: green → forward;
3. red → the borrowing subprocedure: query the shadow bucket of each
   lender in the packet's borrowing class label; the first green
   forwards the packet on borrowed tokens;
4. otherwise → DROP. This is FlowValve's *specialized tail drop*: the
   packet that a hypothetical shaper would have had to queue past its
   class's bandwidth share is discarded before it can occupy the
   shared Tx buffer.

The class is written so the same object can run in two modes:

* **software mode** — call :meth:`decide` (all steps, synchronously);
  used by unit tests and the software-reference scheduler;
* **embedded mode** — the NIC worker model calls the granular step
  methods (:meth:`touch_path`, :meth:`update_step`, :meth:`meter_leaf`,
  :meth:`borrow`, :meth:`commit`) so it can charge per-step cycle
  costs and model the update flag being *held* across simulated time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.packet import DropReason, Packet
from .flow_cache import PathCache
from .sched_tree import ClassNode, SchedulingParams, SchedulingTree
from .token_bucket import MeterColor

__all__ = ["Verdict", "SchedulingFunction", "SchedulingParams", "SchedulingStats"]


class Verdict(enum.Enum):
    """Algorithm 1's output."""

    FORWARD = "forward"
    DROP = "drop"


@dataclass
class SchedulingStats:
    """Lifetime counters of one scheduling-function instance."""

    decisions: int = 0
    forwarded: int = 0
    dropped: int = 0
    forwarded_on_own_tokens: int = 0
    forwarded_on_borrowed_tokens: int = 0
    updates_run: int = 0
    updates_skipped: int = 0
    #: Forwards on borrowed tokens, keyed by (borrower, lender).
    borrow_matrix: Dict[Tuple[str, str], int] = field(default_factory=dict)


class SchedulingFunction:
    """Executable form of Algorithm 1 over a scheduling tree."""

    def __init__(self, tree: SchedulingTree):
        self.tree = tree
        self.params: SchedulingParams = tree.params
        self.stats = SchedulingStats()
        #: Label-tuple → node-path memo (one entry per leaf class).
        self.path_cache = PathCache()
        #: Enabled tracer or None (see :meth:`attach_tracer`).
        self.tracer = None

    def attach_tracer(self, tracer) -> None:
        """Wire *tracer* into this function and its scheduling tree.

        Disabled tracers detach (store ``None``), so every emission
        site stays a single identity check when observability is off.
        """
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None
        self.tree.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # granular steps (embedded mode)
    # ------------------------------------------------------------------
    def path_nodes(self, packet: Packet) -> List[ClassNode]:
        """Resolve the packet's hierarchy label to tree nodes.

        Memoised per label via :class:`~repro.core.flow_cache.PathCache`
        — the dominant per-packet cost of the walk was the repeated
        id → node dict lookups. The returned list is shared; callers
        must not mutate it.
        """
        label = packet.hierarchy_label
        path = self.path_cache.entries.get(label)
        if path is None:
            path = self.path_cache.resolve(self.tree, label)
        return path

    def touch_path(self, path: List[ClassNode], now: float) -> None:
        """Record arrival activity on every class of the path (offered
        packets keep a class active even when all of them are red)."""
        for node in path:  # inlined ClassNode.touch — per-packet hot
            if now > node.last_seen:
                node.last_seen = now

    def update_step(self, node: ClassNode, now: float) -> bool:
        """One loop iteration's lock attempt + update (lines 1-4).

        Returns True when this caller ran the update. In embedded mode
        the NIC worker splits this further to hold the flag across
        simulated update-execution time; see
        :meth:`~repro.core.sched_tree.ClassNode.try_begin_update`.
        """
        if node.try_begin_update(now):
            try:
                node.perform_update(now)
            finally:
                node.end_update()
            self.stats.updates_run += 1
            return True
        self.stats.updates_skipped += 1
        return False

    def meter_leaf(self, packet: Packet, leaf: ClassNode, now: Optional[float] = None) -> MeterColor:
        """Line 6: the leaf meter — the only bucket that throttles.

        With ``continuous_refill`` (the hardware-meter model) the
        bucket first accrues tokens up to *now* at its current rate.
        """
        if now is not None and self.params.continuous_refill:
            leaf.bucket.refill(now)
        return leaf.bucket.meter(self.params.packet_bits(packet.size))

    def borrow(self, packet: Packet, now: float, size_bits: Optional[float] = None) -> Optional[ClassNode]:
        """Lines 9-15: query lender shadow buckets in label order.

        Returns the lender that granted tokens, or ``None``.
        """
        if not self.params.borrow_enabled:
            return None
        if size_bits is None:
            size_bits = self.params.packet_bits(packet.size)
        for lender_id in packet.borrow_label:
            lender = self.tree.node(lender_id)
            # An interior lender stands for its subtree: query its leaf
            # descendants' shadows (see ClassNode.leaf_descendants).
            for leaf_lender in lender.leaf_descendants():
                # "The borrowing procedure is simply another practice of
                # the rate-limiting process" (Fig. 8): the query itself
                # triggers the lender's gated update, so an *idle*
                # lender's shadow keeps replenishing from borrowers'
                # packet events.
                self.update_step(leaf_lender, now)
                if leaf_lender.shadow.meter(size_bits) is MeterColor.GREEN:
                    leaf_lender.lent_bits += size_bits
                    if self.tracer is not None:
                        self.tracer.emit(
                            now, "core.sched", "borrow",
                            borrower=packet.hierarchy_label[-1],
                            lender=leaf_lender.classid,
                            bits=size_bits,
                        )
                    return leaf_lender
        return None

    def commit(
        self,
        packet: Packet,
        path: List[ClassNode],
        borrowed_from: Optional[ClassNode],
        gamma_counted: bool = False,
        size_bits: Optional[float] = None,
    ) -> None:
        """Account a FORWARD: add the packet's tokens to Γ of every
        class on its path (Eq. 3; ``gamma_mode="forwarded"``), and
        drain root/interior buckets — they "use tokens to measure flow
        rate", and that drain is what determines the unconsumed excess
        their next update transfers to the shadow bucket (Fig. 9:
        Γ_S2 = Γ_ML, so S2's lendable part already excludes ML's use).

        ``gamma_counted=True`` (the ``"offered"`` Γ mode) skips the Γ
        observation — it already happened at arrival — but performs
        every other piece of forwarding accounting identically, so both
        Γ modes report the same forwarded/borrow statistics.
        """
        if size_bits is None:
            size_bits = self.params.packet_bits(packet.size)
        observe_gamma = not gamma_counted
        for node in path:
            node.count_forwarded(size_bits, observe_gamma)
            if node.children:
                node.bucket.consume(size_bits)
        stats = self.stats
        stats.forwarded += 1
        if borrowed_from is None:
            stats.forwarded_on_own_tokens += 1
        else:
            stats.forwarded_on_borrowed_tokens += 1
            leaf = path[-1]
            leaf.borrowed_bits += size_bits
            key = (leaf.classid, borrowed_from.classid)
            stats.borrow_matrix[key] = stats.borrow_matrix.get(key, 0) + 1

    def _count_offered(
        self, packet: Packet, path: List[ClassNode], size_bits: Optional[float] = None
    ) -> None:
        """Alternative Γ accounting: count on arrival (the literal
        line ordering of Algorithm 1) — the ``gamma_mode="offered"``
        ablation."""
        if size_bits is None:
            size_bits = self.params.packet_bits(packet.size)
        for node in path:
            node.gamma.observe(size_bits)

    # ------------------------------------------------------------------
    # software mode
    # ------------------------------------------------------------------
    def decide(self, packet: Packet, now: float) -> Verdict:
        """Run Algorithm 1 start to finish and return the verdict.

        The packet must already carry its QoS labels (see
        :class:`~repro.core.labeling.LabelingFunction`).
        """
        self.stats.decisions += 1
        params = self.params
        path = self.path_nodes(packet)
        self.touch_path(path, now)
        size_bits = params.packet_bits(packet.size)
        offered_mode = params.gamma_mode == "offered"
        if offered_mode:
            self._count_offered(packet, path, size_bits)
        update_step = self.update_step
        for node in path:
            update_step(node, now)
        leaf = path[-1]
        if params.continuous_refill:
            leaf.bucket.refill(now)
        color = leaf.bucket.meter(size_bits)
        borrowed_from: Optional[ClassNode] = None
        if color is not MeterColor.GREEN:
            borrowed_from = self.borrow(packet, now, size_bits)
            if borrowed_from is None:
                self.stats.dropped += 1
                packet.mark_dropped(DropReason.SCHED_RED)
                if self.tracer is not None:
                    self.tracer.emit(
                        now, "core.sched", "drop",
                        reason=DropReason.SCHED_RED.value,
                        classid=leaf.classid, app=packet.app, size=packet.size,
                    )
                return Verdict.DROP
        # Both Γ modes run the same forwarding accounting; offered mode
        # already counted Γ at arrival, so commit() only skips that.
        self.commit(packet, path, borrowed_from, gamma_counted=offered_mode, size_bits=size_bits)
        return Verdict.FORWARD

    # ------------------------------------------------------------------
    @property
    def drop_ratio(self) -> float:
        """Dropped over decided, 0.0 before any decision."""
        if self.stats.decisions == 0:
            return 0.0
        return self.stats.dropped / self.stats.decisions
