"""The labeling function (paper Fig. 5, green arrow).

An application packet first matches filter rules to be classified;
the matched packet gets its QoS labels — the hierarchy class label and
the borrowing class label — stored as metadata in the packet buffer.
The exact-match flow cache short-circuits the rule walk for all but a
flow's first packet.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import UnknownClassError
from ..net.packet import DropReason, Packet
from ..tc.ast import PolicyConfig
from ..tc.classifier import Classifier
from .flow_cache import ExactMatchCache
from .labels import QosLabel
from .sched_tree import SchedulingTree

__all__ = ["LabelingFunction"]


class LabelingFunction:
    """Classifies packets and stamps QoS labels.

    Parameters
    ----------
    tree: the scheduling tree (for hierarchy paths and borrow labels).
    classifier: the compiled filter rules (slow path).
    default_leaf: leaf class id for unmatched packets (from the root
        qdisc's ``default`` option); ``None`` means unmatched packets
        are dropped.
    cache_size: EMC capacity; 0 disables caching (every packet walks
        the rules — the "kernel-sized" slow path of Observation 2).
    """

    def __init__(
        self,
        tree: SchedulingTree,
        classifier: Classifier,
        default_leaf: Optional[str] = None,
        cache_size: int = 65536,
    ):
        self.tree = tree
        self.classifier = classifier
        self.default_leaf = default_leaf
        self.cache: Optional[ExactMatchCache[QosLabel]] = (
            ExactMatchCache(cache_size) if cache_size > 0 else None
        )
        #: Precomputed label per leaf class id.
        self._labels: Dict[str, QosLabel] = {}
        for leaf in tree.leaves():
            hierarchy = tuple(n.classid for n in leaf.path_from_root())
            self._labels[leaf.classid] = QosLabel(hierarchy=hierarchy, borrow=leaf.spec.borrow)
        if default_leaf is not None and default_leaf not in self._labels:
            raise UnknownClassError(default_leaf)
        #: Packets dropped because no rule (and no default) matched.
        self.unclassified_drops = 0

    def label_for_leaf(self, leaf_id: str) -> QosLabel:
        """The precomputed label of a leaf class."""
        try:
            return self._labels[leaf_id]
        except KeyError:
            raise UnknownClassError(leaf_id) from None

    def label(self, packet: Packet, now: float = 0.0) -> Optional[QosLabel]:
        """Classify *packet*, stamp and return its label.

        Returns ``None`` (and marks the packet dropped) when no rule
        matches and the policy has no default class.
        """
        cache = self.cache
        key = (packet.flow, packet.vf_index)
        if cache is not None:
            cached = cache.get(key, now)
            if cached is not None:
                cached.apply_to(packet)
                return cached
        leaf_id = self.classifier.classify(packet)
        if leaf_id is None:
            leaf_id = self.default_leaf
        if leaf_id is None:
            self.unclassified_drops += 1
            packet.mark_dropped(DropReason.UNCLASSIFIED)
            return None
        label = self.label_for_leaf(leaf_id)
        if cache is not None:
            cache.put(key, label, now)
        label.apply_to(packet)
        return label

    @property
    def cache_hit_ratio(self) -> float:
        """EMC hit ratio (0.0 when caching is disabled)."""
        return self.cache.hit_ratio if self.cache is not None else 0.0
