"""Token buckets and the meter primitive.

This is the paper's Figure 8 machinery. A class's bucket is:

* **replenished** only inside the *update* subprocedure — one core at a
  time, adding ``ΔT × θ`` tokens where ``ΔT`` is the elapsed time since
  the previous update and ``θ`` the class's current token rate;
* **metered** on every packet — an atomic check-and-subtract that
  colours the packet green (enough tokens, consume them) or red (leave
  the bucket untouched). On the NFP this maps to the hardware meter
  instruction [28]; here it is a plain method whose *cost* is charged
  by the NIC model.

Units: the paper expresses token rate in bits/cycle (Eq. 2,
``θ = b / f``). We keep tokens in **bits** and rates in **bits per
second**, which is the same quantity with the core frequency ``f``
factored out — the conversion is exact, not an approximation.
"""

from __future__ import annotations

import enum

__all__ = ["MeterColor", "TokenBucket"]


class MeterColor(enum.Enum):
    """Result of metering a packet against a bucket (Eq. 1)."""

    GREEN = "green"
    RED = "red"


class TokenBucket:
    """A single token bucket with decoupled replenish/meter phases.

    Parameters
    ----------
    rate_bps:
        Token fill rate θ in bits per second. May be changed at every
        update epoch via :attr:`rate_bps` — that is exactly how the
        condition templates steer bandwidth.
    burst_bits:
        Bucket capacity. The paper sizes bursts to roughly one update
        interval of tokens; callers pick this (see
        :meth:`for_interval`).
    start_full:
        Whether the bucket starts at capacity (a freshly configured
        class may burst immediately, like HTB).
    """

    __slots__ = ("rate_bps", "capacity", "tokens", "last_refill", "greens", "reds")

    def __init__(self, rate_bps: float, burst_bits: float, start_full: bool = True, now: float = 0.0):
        if burst_bits <= 0:
            raise ValueError(f"burst must be positive, got {burst_bits}")
        if rate_bps < 0:
            raise ValueError(f"rate must be non-negative, got {rate_bps}")
        self.rate_bps = rate_bps
        self.capacity = burst_bits
        self.tokens = burst_bits if start_full else 0.0
        self.last_refill = now
        #: Packets coloured green / red (lifetime counters).
        self.greens = 0
        self.reds = 0

    @classmethod
    def for_interval(
        cls, rate_bps: float, interval: float, min_burst_bits: float = 12_336.0, now: float = 0.0
    ) -> "TokenBucket":
        """A bucket whose burst holds *interval* seconds of tokens.

        The floor default (12336 bits = one 1518 B frame + overhead)
        guarantees even a zero-rate class can be re-rated without a
        degenerate capacity.
        """
        burst = max(min_burst_bits, rate_bps * interval)
        return cls(rate_bps, burst, now=now)

    # ------------------------------------------------------------------
    # update-phase operations (run under the class's update lock)
    # ------------------------------------------------------------------
    def refill(self, now: float) -> float:
        """Add ``ΔT × θ`` tokens, clamped to capacity; returns the
        tokens actually added. ΔT is measured from the previous refill
        (the recorded-timestamp scheme of Fig. 8)."""
        dt = now - self.last_refill
        if dt <= 0:
            return 0.0
        before = self.tokens
        self.tokens = min(self.capacity, self.tokens + self.rate_bps * dt)
        self.last_refill = now
        return self.tokens - before

    def tokens_at(self, now: float) -> float:
        """Closed-form projection of :meth:`refill`'s token count at
        *now*, without mutating the bucket.

        The fill between two refills is linear in elapsed time (one
        rate, clamped at capacity), so the future balance of an
        undisturbed bucket is fully determined — this is what lets the
        fluid lane decide a flow's drain analytically before committing
        any state change. Uses the exact float expression of
        :meth:`refill` so a projection followed by the real refill can
        never disagree.
        """
        dt = now - self.last_refill
        if dt <= 0:
            return self.tokens
        return min(self.capacity, self.tokens + self.rate_bps * dt)

    def set_rate(self, rate_bps: float, now: float) -> None:
        """Re-rate the bucket: settle tokens at the old θ up to *now*,
        then switch to the new rate (so a rate change never retro-
        actively grants or revokes tokens).

        Rejects negative rates like ``__init__`` — silently clamping
        here would hide a caller's arithmetic bug as a stalled class.
        """
        if rate_bps < 0:
            raise ValueError(f"rate must be non-negative, got {rate_bps}")
        self.refill(now)
        self.rate_bps = rate_bps

    def resize(self, burst_bits: float) -> None:
        """Change capacity, clamping current tokens into the new size."""
        if burst_bits <= 0:
            raise ValueError(f"burst must be positive, got {burst_bits}")
        self.capacity = burst_bits
        self.tokens = min(self.tokens, burst_bits)

    def drain(self) -> None:
        """Empty the bucket (expired-status restoration)."""
        self.tokens = 0.0

    # ------------------------------------------------------------------
    # meter-phase operations (atomic, every packet, no lock)
    # ------------------------------------------------------------------
    def meter(self, size_bits: float) -> MeterColor:
        """Colour a packet of *size_bits*: green consumes, red doesn't.

        This is all-or-nothing, like the hardware meter instruction —
        a red packet leaves the token count untouched (Fig. 8 step 5).
        """
        if self.tokens >= size_bits:
            self.tokens -= size_bits
            self.greens += 1
            return MeterColor.GREEN
        self.reds += 1
        return MeterColor.RED

    def peek(self, size_bits: float) -> MeterColor:
        """The colour :meth:`meter` would return, without consuming."""
        return MeterColor.GREEN if self.tokens >= size_bits else MeterColor.RED

    def consume(self, size_bits: float) -> None:
        """Unconditionally drain *size_bits* tokens (floored at zero).

        This is the *measurement* drain of root/interior classes: they
        never drop, their buckets simply track how much of the granted
        rate the subtree has used, so the unconsumed remainder can be
        moved to the shadow bucket at the next update epoch.
        """
        self.tokens = max(0.0, self.tokens - size_bits)

    def withdraw_excess(self, keep_bits: float) -> float:
        """Remove and return every token above *keep_bits*.

        Used by the update subprocedure to *transfer* a class's
        unconsumed tokens into its shadow bucket — a move, not a copy,
        so the total granted bandwidth stays conserved.
        """
        excess = self.tokens - keep_bits
        if excess <= 0:
            return 0.0
        self.tokens = keep_bits
        return excess

    def deposit(self, amount_bits: float) -> float:
        """Add externally sourced tokens, clamped to capacity; returns
        the amount actually accepted (the shadow side of the transfer)."""
        if amount_bits <= 0:
            return 0.0
        accepted = min(amount_bits, self.capacity - self.tokens)
        if accepted > 0:
            self.tokens += accepted
        return accepted

    @property
    def fill_fraction(self) -> float:
        """Current tokens as a fraction of capacity."""
        return self.tokens / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TokenBucket θ={self.rate_bps:.0f}bps "
            f"{self.tokens:.0f}/{self.capacity:.0f}b g={self.greens} r={self.reds}>"
        )
