"""FlowValve: the paper's primary contribution.

The back end of Figure 5 — everything that runs on the SmartNIC data
plane, implemented as pure-Python algorithm objects that can execute
either standalone (unit tests, software mode) or embedded in the
cycle-cost NIC model (:mod:`repro.nic`):

* :mod:`.token_bucket` — token buckets with the atomic ``meter``
  primitive (Fig. 8) and shadow buckets for lending (Eq. 6);
* :mod:`.rate_rules` — the condition templates deriving per-class token
  rates (Eq. 2, 4, 5 and §IV-C3);
* :mod:`.sched_tree` — the scheduling tree built from a validated
  :class:`~repro.tc.PolicyConfig`;
* :mod:`.labels` — hierarchy/borrowing QoS labels (§IV-B);
* :mod:`.flow_cache` — the exact-match flow cache (Observation 2);
* :mod:`.labeling` — the labeling function (classify + label);
* :mod:`.scheduling` — the scheduling function, Algorithm 1;
* :mod:`.frontend` — the host-side ``fv`` service;
* :mod:`.valve` — the :class:`FlowValve` facade tying it together.
"""

from .token_bucket import TokenBucket, MeterColor
from .labels import QosLabel
from .rate_rules import (
    RateRule,
    FixedRate,
    FullParentRate,
    WeightedShare,
    PriorityResidual,
    GuaranteedResidual,
    CeilCap,
    RuleContext,
)
from .sched_tree import ClassNode, SchedulingTree
from .flow_cache import ExactMatchCache
from .labeling import LabelingFunction
from .scheduling import SchedulingFunction, Verdict, SchedulingParams
from .frontend import FlowValveFrontend
from .valve import FlowValve

__all__ = [
    "TokenBucket",
    "MeterColor",
    "QosLabel",
    "RateRule",
    "FixedRate",
    "FullParentRate",
    "WeightedShare",
    "PriorityResidual",
    "GuaranteedResidual",
    "CeilCap",
    "RuleContext",
    "ClassNode",
    "SchedulingTree",
    "ExactMatchCache",
    "LabelingFunction",
    "SchedulingFunction",
    "Verdict",
    "SchedulingParams",
    "FlowValveFrontend",
    "FlowValve",
]
