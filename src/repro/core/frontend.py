"""The FlowValve front end — the host-side system service (Fig. 5).

Takes user-specified QoS policies (``fv`` command scripts or
programmatic :class:`~repro.tc.PolicyConfig` objects), validates them,
constructs the scheduling tree, and "populates configuration
parameters and filter rules into the SmartNIC shared memory" — in this
model, instantiates the labeling and scheduling functions that the NIC
back end (or the software reference runtime) executes.
"""

from __future__ import annotations

from typing import Optional

from ..tc.ast import PolicyConfig, parse_classid
from ..tc.classifier import Classifier
from ..tc.parser import parse_script
from ..tc.validate import validate_policy
from .labeling import LabelingFunction
from .sched_tree import SchedulingParams, SchedulingTree
from .scheduling import SchedulingFunction

__all__ = ["FlowValveFrontend"]


class FlowValveFrontend:
    """Builds and owns the back-end objects for one policy.

    Parameters
    ----------
    policy: a validated (or to-be-validated) policy configuration.
    link_rate_bps: physical line rate; supplies the root rate when the
        policy doesn't set one and caps everything else.
    params: scheduling function tunables.
    cache_size: exact-match flow cache capacity (0 disables).
    """

    def __init__(
        self,
        policy: PolicyConfig,
        link_rate_bps: Optional[float] = None,
        params: Optional[SchedulingParams] = None,
        cache_size: int = 65536,
    ):
        validate_policy(policy)
        self.policy = policy
        self.link_rate_bps = link_rate_bps
        self.tree = SchedulingTree.from_policy(policy, link_rate_bps, params)
        self.classifier = Classifier(policy.filters)
        default_leaf = self._default_leaf_id()
        self.labeler = LabelingFunction(
            self.tree, self.classifier, default_leaf=default_leaf, cache_size=cache_size
        )
        self.scheduler = SchedulingFunction(self.tree)

    def attach_observability(self, tracer=None, metrics=None) -> None:
        """Wire a tracer and/or metrics registry into the back end.

        The NIC pipeline does this automatically from the simulator's
        sinks; software-mode users (CLI, tests) call it directly.
        Disabled or ``None`` sinks detach cleanly.
        """
        self.scheduler.attach_tracer(tracer)
        self.tree.register_metrics(metrics)

    @classmethod
    def from_script(
        cls,
        script: str,
        link_rate_bps: Optional[float] = None,
        params: Optional[SchedulingParams] = None,
        cache_size: int = 65536,
    ) -> "FlowValveFrontend":
        """Parse an ``fv`` script and build the front end from it."""
        return cls(parse_script(script), link_rate_bps, params, cache_size)

    # ------------------------------------------------------------------
    def _default_leaf_id(self) -> Optional[str]:
        """Resolve the root qdisc's ``default`` minor to a class id."""
        qdisc = self.policy.root_qdisc()
        if not qdisc.default:
            return None
        major, _ = parse_classid(qdisc.handle)
        return f"{major:x}:{qdisc.default:x}"

    def describe(self) -> str:
        """Multi-line status text (tree shape, rates, filter count)."""
        header = (
            f"FlowValve policy: {len(self.tree)} classes, "
            f"{len(self.classifier)} filters, "
            f"link={self.link_rate_bps or 'unset'}"
        )
        return header + "\n" + self.tree.describe()

    def class_rates(self) -> dict:
        """Snapshot of {classid: (θ, Γ)} for reporting."""
        return {n.classid: (n.theta, n.gamma_rate) for n in self.tree.nodes}
