"""QoS labels (paper §IV-B).

A label has two parts:

* the **hierarchy class label** — the root-to-leaf sequence of class
  ids a packet belongs to, telling the scheduling function which tree
  nodes to update (e.g. ``S0 → S1 → S2 → ML``);
* the **borrowing class label** — the lender classes whose shadow
  buckets may be queried, in order, when the packet's own leaf bucket
  is red.

On the real NIC these are metadata fields in the packet buffer; here
they are tuples stamped onto :class:`~repro.net.packet.Packet` by the
labeling function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["QosLabel"]


@dataclass(frozen=True)
class QosLabel:
    """An immutable (hierarchy, borrowing) label pair.

    Frozen and hashable so the exact-match flow cache can store labels
    directly as values and compare them cheaply.
    """

    #: Root-to-leaf class ids; the last element is the leaf class.
    hierarchy: Tuple[str, ...]
    #: Lender class ids queried in order on a red meter result.
    borrow: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.hierarchy:
            raise ValueError("hierarchy label must name at least the leaf class")

    @property
    def leaf(self) -> str:
        """The leaf class id."""
        return self.hierarchy[-1]

    @property
    def root(self) -> str:
        """The root class id."""
        return self.hierarchy[0]

    @property
    def depth(self) -> int:
        """Number of classes on the path (root included)."""
        return len(self.hierarchy)

    def apply_to(self, packet) -> None:
        """Stamp this label onto *packet*'s metadata fields."""
        packet.hierarchy_label = self.hierarchy
        packet.borrow_label = self.borrow

    def __str__(self) -> str:
        path = "->".join(self.hierarchy)
        if self.borrow:
            return f"{path} [borrow: {','.join(self.borrow)}]"
        return path
