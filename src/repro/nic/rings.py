"""Receive queues and the shared transmit ring.

Challenge 2 in the paper: "packets are copied to the shared transmit
(Tx) ring buffer and fed into multiple FIFO queues in the traffic
manager. This results in packets of all classes mixed in the Tx buffer
and treated equally upon egress." Both structures here are bounded
FIFOs with tail-drop — there are no per-class queues anywhere on the
NIC, which is exactly the constraint FlowValve's specialized tail drop
works around.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import DropReason, Packet
from ..sim import Store

__all__ = ["RxQueue", "TxRing"]


class RxQueue:
    """One SR-IOV virtual function's transmit queue into the NIC.

    (Named from the NIC's perspective: the host's VF Tx queue is the
    NIC's receive queue.) Bounded; arrivals beyond capacity tail-drop,
    which is the back-pressure signal host TCP stacks react to.
    """

    def __init__(self, sim, vf_index: int, depth: int = 256):
        self.sim = sim
        self.vf_index = vf_index
        self.store = Store(sim, capacity=depth, name=f"vf{vf_index}-rx")
        #: Packets dropped at the host/NIC boundary because the ring was full.
        self.tail_drops = 0

    def offer(self, packet: Packet) -> bool:
        """Non-blocking enqueue; False (and drop-marked) when full."""
        if self.store.try_put(packet):
            return True
        self.tail_drops += 1
        packet.mark_dropped(DropReason.QUEUE_FULL)
        return False

    def __len__(self) -> int:
        return len(self.store)


class TxRing:
    """The shared transmit ring between workers and the traffic manager.

    All traffic classes mix here FIFO; a full ring tail-drops — the
    congestion FlowValve's early drop is designed to prevent from ever
    happening to high-priority traffic.
    """

    def __init__(self, sim, depth: int = 1024):
        self.sim = sim
        self.store = Store(sim, capacity=depth, name="tx-ring")
        self.tail_drops = 0
        #: High-water mark of ring occupancy (diagnostic).
        self.max_occupancy = 0

    def offer(self, packet: Packet) -> bool:
        """Non-blocking enqueue; False (and drop-marked) when full."""
        if self.store.try_put(packet):
            occupancy = len(self.store)
            if occupancy > self.max_occupancy:
                self.max_occupancy = occupancy
            return True
        self.tail_drops += 1
        packet.mark_dropped(DropReason.QUEUE_FULL)
        return False

    def get(self):
        """Waitable dequeue for the traffic manager."""
        return self.store.get()

    def try_get(self) -> Optional[Packet]:
        return self.store.try_get()

    def __len__(self) -> int:
        return len(self.store)
