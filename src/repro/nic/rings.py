"""Receive queues and the shared transmit ring.

Challenge 2 in the paper: "packets are copied to the shared transmit
(Tx) ring buffer and fed into multiple FIFO queues in the traffic
manager. This results in packets of all classes mixed in the Tx buffer
and treated equally upon egress." Both structures here are bounded
FIFOs with tail-drop — there are no per-class queues anywhere on the
NIC, which is exactly the constraint FlowValve's specialized tail drop
works around.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..net.packet import DropReason, Packet
from ..sim import Store

__all__ = ["RxQueue", "TxRing"]


class RxQueue:
    """One SR-IOV virtual function's transmit queue into the NIC.

    (Named from the NIC's perspective: the host's VF Tx queue is the
    NIC's receive queue.) Bounded; arrivals beyond capacity tail-drop,
    which is the back-pressure signal host TCP stacks react to.
    """

    def __init__(self, sim, vf_index: int, depth: int = 256):
        self.sim = sim
        self.vf_index = vf_index
        self.store = Store(sim, capacity=depth, name=f"vf{vf_index}-rx")
        #: Packets dropped at the host/NIC boundary because the ring was full.
        self.tail_drops = 0

    def offer(self, packet: Packet) -> bool:
        """Non-blocking enqueue; False (and drop-marked) when full."""
        if self.store.try_put(packet):
            return True
        self.tail_drops += 1
        packet.mark_dropped(DropReason.QUEUE_FULL)
        return False

    def __len__(self) -> int:
        return len(self.store)


class TxRing:
    """The shared transmit ring between workers and the traffic manager.

    All traffic classes mix here FIFO; a full ring tail-drops — the
    congestion FlowValve's early drop is designed to prevent from ever
    happening to high-priority traffic.

    Two occupancy representations share this interface:

    * **Store mode** (default): a real :class:`~repro.sim.Store` the
      traffic manager's drain process pulls with waitable ``get``.
    * **Virtual mode** (``virtual=True``): the fast-path traffic
      manager serialises frames arithmetically, so no process ever
      dequeues; instead the ring keeps the *serialisation start time*
      of each accepted-but-not-yet-started frame. In store mode a
      frame leaves the ring exactly when the drain process starts
      clocking it onto the wire, so "starts later than now" IS the
      ring occupancy — draining matured entries on every observation
      reproduces the store-mode occupancy (and therefore the same
      tail-drop decisions) without any events.
    """

    def __init__(self, sim, depth: int = 1024, virtual: bool = False):
        self.sim = sim
        self.depth = depth
        self.virtual = virtual
        self.store = Store(sim, capacity=depth, name="tx-ring")
        #: Virtual mode: serialisation start times of queued frames
        #: (monotonic — the wire is FIFO — so a deque stays sorted).
        self._starts = deque()
        self.tail_drops = 0
        #: High-water mark of ring occupancy (diagnostic).
        self.max_occupancy = 0

    def offer(self, packet: Packet) -> bool:
        """Non-blocking enqueue; False (and drop-marked) when full."""
        if self.store.try_put(packet):
            occupancy = len(self.store)
            if occupancy > self.max_occupancy:
                self.max_occupancy = occupancy
            return True
        self.tail_drops += 1
        packet.mark_dropped(DropReason.QUEUE_FULL)
        return False

    def get(self):
        """Waitable dequeue for the traffic manager."""
        return self.store.get()

    def try_get(self) -> Optional[Packet]:
        return self.store.try_get()

    # -- virtual mode (fast-path traffic manager) ----------------------
    def virtual_accept(self, now: float) -> bool:
        """Capacity check at *now*; counts (not marks) a tail-drop.

        Matured starts leave first: the store-mode drain pops a frame
        at the instant its serialisation starts, and ties resolve the
        same way (the drain's wakeup precedes an equal-time offer).
        """
        starts = self._starts
        while starts and starts[0] <= now:
            starts.popleft()
        if len(starts) >= self.depth:
            self.tail_drops += 1
            return False
        return True

    def virtual_push(self, start: float) -> None:
        """Record an accepted frame that starts serialising at *start*.

        Frames starting immediately are never pushed — in store mode
        they are handed straight to the waiting drain process and never
        occupy the ring either.
        """
        starts = self._starts
        starts.append(start)
        occupancy = len(starts)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy

    def __len__(self) -> int:
        if self.virtual:
            starts = self._starts
            now = self.sim._now
            while starts and starts[0] <= now:
                starts.popleft()
            return len(starts)
        return len(self.store)
