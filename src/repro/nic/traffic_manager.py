"""The traffic manager and MAC: Tx ring → FIFO → wire.

Paper §II-B: most NICs expose FIFO queues behind a round-robin
scheduler, giving only per-queue fairness — no conditional policies.
FlowValve therefore treats the whole egress side as *one* FIFO
(abstraction F0 in Fig. 1). The model implements exactly that: a
single drain process pulls the shared Tx ring in order and serialises
each frame onto the :class:`~repro.net.link.Link` at line rate, adding
the configured fixed egress latency (Tx DMA + TM + MAC).
"""

from __future__ import annotations

from ..net.link import Link
from ..net.packet import Packet
from .rings import TxRing

__all__ = ["TrafficManager"]


class TrafficManager:
    """Drains the Tx ring onto the wire at line rate.

    The NIC's fixed egress latency (Tx DMA + TM + MAC pipelines) is
    modelled as part of the link's propagation delay — it delays
    delivery without consuming wire bandwidth — so the pipeline
    assembly folds ``NicConfig.tx_fixed_latency`` into the link.
    """

    def __init__(self, sim, tx_ring: TxRing, link: Link, on_sent=None):
        self.sim = sim
        self.tx_ring = tx_ring
        self.link = link
        #: Called with each packet once serialisation finishes (the
        #: pipeline uses it to return the packet's buffer to the pool).
        self.on_sent = on_sent
        #: Frames handed to the MAC.
        self.frames_out = 0
        tracer = sim.tracer
        self._trace = tracer if tracer.enabled else None
        if sim.metrics.enabled:
            sim.metrics.probe("nic.tm.frames_out", lambda: self.frames_out)
            sim.metrics.probe("nic.tm.queue_depth", lambda: len(self.tx_ring))
        self._process = sim.process(self._drain())

    def _drain(self):
        """One frame at a time: dequeue, wait serialisation, repeat.

        Waiting out each frame's serialisation time before the next
        dequeue is what enforces the line rate; the fixed latency is
        modelled on the link's propagation side so it doesn't consume
        wire bandwidth.
        """
        trace = self._trace
        while True:
            packet: Packet = yield self.tx_ring.get()
            self.frames_out += 1
            start = self.sim.now
            if trace is not None:
                trace.emit(
                    start, "nic.tm", "queue_depth",
                    depth=len(self.tx_ring), frames_out=self.frames_out,
                    app=packet.app, size=packet.size,
                )
            finish = self.link.send(packet)
            yield finish - start
            if self.on_sent is not None:
                self.on_sent(packet)

    @property
    def queue_depth(self) -> int:
        """Frames waiting in the Tx ring right now."""
        return len(self.tx_ring)
