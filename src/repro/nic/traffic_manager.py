"""The traffic manager and MAC: Tx ring → FIFO → wire.

Paper §II-B: most NICs expose FIFO queues behind a round-robin
scheduler, giving only per-queue fairness — no conditional policies.
FlowValve therefore treats the whole egress side as *one* FIFO
(abstraction F0 in Fig. 1). The model implements exactly that: a
single drain process pulls the shared Tx ring in order and serialises
each frame onto the :class:`~repro.net.link.Link` at line rate, adding
the configured fixed egress latency (Tx DMA + TM + MAC).

Two drain implementations share that contract (DESIGN.md §7):

* **Process mode** — the generator ``_drain`` loop: one wakeup to
  dequeue each frame plus one to wait out its serialisation. Used
  whenever observability is on (it emits the per-frame queue-depth
  trace) or the pipeline's fast path is disabled.
* **Batched fast path** — :meth:`offer`/:meth:`offer_burst`: egress is
  computed *arithmetically* at enqueue time. Because the wire is FIFO
  and ``Link.send`` starts each frame at ``max(now, busy_until)``, a
  frame's serialisation window is fully determined the moment it is
  accepted; sending it immediately yields bit-identical start/finish/
  delivery times to the paced process without a single TM wakeup. Ring
  capacity is enforced through the Tx ring's virtual occupancy (frames
  whose start still lies in the future), and buffer returns ride the
  pool's lazy ``release_at`` route. Net effect: the ~3 kernel events
  the process mode spends per frame (dequeue wakeup, serialisation
  wait, buffer relink) drop to zero.
"""

from __future__ import annotations

from ..net.link import Link
from ..net.packet import DropReason, Packet
from .rings import TxRing

__all__ = ["TrafficManager"]


class TrafficManager:
    """Drains the Tx ring onto the wire at line rate.

    The NIC's fixed egress latency (Tx DMA + TM + MAC pipelines) is
    modelled as part of the link's propagation delay — it delays
    delivery without consuming wire bandwidth — so the pipeline
    assembly folds ``NicConfig.tx_fixed_latency`` into the link.

    Parameters
    ----------
    on_sent: called with each packet once serialisation finishes (the
        process-mode drain uses it to return the packet's buffer).
    on_sent_at: fast-path variant, called as ``on_sent_at(packet,
        finish)`` at *enqueue* time with the precomputed finish.
    fast: run the batched fast path instead of the drain process.
    """

    def __init__(self, sim, tx_ring: TxRing, link: Link, on_sent=None,
                 on_sent_at=None, fast: bool = False):
        self.sim = sim
        self.tx_ring = tx_ring
        self.link = link
        #: Called with each packet once serialisation finishes (the
        #: pipeline uses it to return the packet's buffer to the pool).
        self.on_sent = on_sent
        self.on_sent_at = on_sent_at
        self.fast = fast
        # Process mode counts a frame when the drain dequeues it; the
        # fast path counts at accept time and subtracts frames whose
        # serialisation hasn't started yet (still in the virtual ring),
        # so `frames_out` reads identically in both modes at any
        # timestamp — including a run horizon that cuts mid-queue.
        self._frames_out = 0
        #: Virtual-clock override for deferred egress (the fluid lane
        #: replays completions at their original timestamps after the
        #: wall clock has passed them). None = use the simulator clock.
        self._now_override = None
        tracer = sim.tracer
        self._trace = tracer if tracer.enabled else None
        if sim.metrics.enabled:
            sim.metrics.probe("nic.tm.frames_out", lambda: self.frames_out)
            sim.metrics.probe("nic.tm.queue_depth", lambda: len(self.tx_ring))
        self._process = None if fast else sim.process(self._drain())

    def _drain(self):
        """One frame at a time: dequeue, wait serialisation, repeat.

        Waiting out each frame's serialisation time before the next
        dequeue is what enforces the line rate; the fixed latency is
        modelled on the link's propagation side so it doesn't consume
        wire bandwidth.
        """
        trace = self._trace
        while True:
            packet: Packet = yield self.tx_ring.get()
            self._frames_out += 1
            start = self.sim.now
            if trace is not None:
                trace.emit(
                    start, "nic.tm", "queue_depth",
                    depth=len(self.tx_ring), frames_out=self.frames_out,
                    app=packet.app, size=packet.size,
                )
            finish = self.link.send(packet)
            yield finish - start
            if self.on_sent is not None:
                self.on_sent(packet)

    # ------------------------------------------------------------------
    # batched fast path (zero TM events; see module docstring)
    # ------------------------------------------------------------------
    def offer(self, packet: Packet) -> bool:
        """Accept one frame for egress; False (drop-marked) when the
        ring is full. Serialisation is computed immediately."""
        now = self._now_override
        if now is None:
            now = self.sim._now
        ring = self.tx_ring
        if not ring.virtual_accept(now):
            packet.mark_dropped(DropReason.QUEUE_FULL)
            return False
        self._frames_out += 1
        link = self.link
        start = link._busy_until
        finish = link.send(packet, now)
        if start > now:
            ring.virtual_push(start)
        if self.on_sent_at is not None:
            self.on_sent_at(packet, finish)
        return True

    def offer_burst(self, packets) -> list:
        """Accept a burst of frames in one call; returns the rejects.

        Semantically identical to calling :meth:`offer` per frame —
        capacity is checked frame by frame against the evolving virtual
        occupancy — but the delivery events of the accepted run are
        inserted with one batched queue operation
        (:meth:`Link.send_batch`). Rejected frames come back
        drop-marked for the pipeline to tally.
        """
        now = self._now_override
        if now is None:
            now = self.sim._now
        ring = self.tx_ring
        link = self.link
        busy = link._busy_until
        if busy < now:
            busy = now
        accepted = []
        rejected = []
        serialization_time = link.serialization_time
        for packet in packets:
            if not ring.virtual_accept(now):
                packet.mark_dropped(DropReason.QUEUE_FULL)
                rejected.append(packet)
                continue
            start = busy
            busy = start + serialization_time(packet)
            if start > now:
                ring.virtual_push(start)
            accepted.append(packet)
        if accepted:
            self._frames_out += len(accepted)
            finishes = link.send_batch(accepted, now)
            if self.on_sent_at is not None:
                on_sent_at = self.on_sent_at
                for packet, finish in zip(accepted, finishes):
                    on_sent_at(packet, finish)
        return rejected

    @property
    def frames_out(self) -> int:
        """Frames whose serialisation has started (handed to the MAC)."""
        if self.fast:
            return self._frames_out - len(self.tx_ring)
        return self._frames_out

    @property
    def queue_depth(self) -> int:
        """Frames waiting in the Tx ring right now."""
        return len(self.tx_ring)
