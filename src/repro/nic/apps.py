"""NIC applications: the code plugged into each worker's routine.

The pipeline runs one :class:`NicApp` on every worker micro-engine.
``handle`` is a *generator*: every ``yield <seconds>`` models cycles
spent (and, in blocking lock modes, waits on a lock event), and the
generator's return value is the forwarding verdict. Workers delegate
with ``yield from``, so app time is charged inside the worker's
run-to-completion slot, exactly like plugging a scheduling function
into the Micro-C processing loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from ..core.labeling import LabelingFunction
from ..core.scheduling import SchedulingFunction, Verdict
from ..core.token_bucket import MeterColor
from ..net.packet import DropReason, Packet
from ..sim import At, Lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import NicPipeline

__all__ = ["NicApp", "ForwardAllApp", "FlowValveNicApp"]


class NicApp:
    """Interface for per-packet worker applications."""

    def bind(self, pipeline: "NicPipeline") -> None:
        """Called once when attached; gives access to clock and costs."""
        self.pipeline = pipeline

    def handle(self, packet: Packet) -> Generator:
        """Process one packet; yield time costs; return a Verdict."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator function

    def fast_handler(self) -> Optional[Callable[[Packet], Generator]]:
        """A single-wakeup replacement for the worker's ``fixed
        overhead + handle()`` sequence, or None when the app (or its
        configuration) has no semantically-identical fast form.

        Contract: the returned generator charges the pipeline's fixed
        overhead itself (its first yield covers it) and resumes at
        bit-identical absolute times to the slow sequence.
        """
        return None


class ForwardAllApp(NicApp):
    """Pass-through: the NIC with FlowValve disabled (§V-B's baseline
    used to establish the 161 µs forwarding floor)."""

    def handle(self, packet: Packet) -> Generator:
        return Verdict.FORWARD
        yield  # pragma: no cover - generator marker


class FlowValveNicApp(NicApp):
    """FlowValve's labeling + scheduling functions with cycle costs.

    Parameters
    ----------
    labeler / scheduler: the back-end objects built by the front end
        (:class:`~repro.core.frontend.FlowValveFrontend`). They are
        shared state — exactly like the scheduling tree in NFP shared
        memory — so one app instance serves all workers.
    """

    def __init__(self, labeler: LabelingFunction, scheduler: SchedulingFunction):
        self.labeler = labeler
        self.scheduler = scheduler
        #: Per-class blocking locks (created lazily per lock mode).
        self._class_locks: Dict[str, Lock] = {}
        self._global_lock: Optional[Lock] = None
        #: cycle-count → seconds memo. Handle() converts a handful of
        #: distinct cycle budgets on every packet; the conversion must
        #: stay ``config.seconds(n)`` (same division, bit-identical
        #: floats), so cache its results rather than precompute a
        #: seconds-per-cycle factor.
        self._cycles_cache: Dict[int, float] = {}

    def bind(self, pipeline: "NicPipeline") -> None:
        super().bind(pipeline)
        if pipeline.config.lock_mode in ("global_block", "sequential"):
            self._global_lock = Lock(pipeline.sim, name="sched-tree-global")
        # Thread the simulator's observability sinks through the shared
        # scheduling objects (no-ops detach, keeping the hot path bare).
        self.scheduler.attach_tracer(pipeline.sim.tracer)
        self.scheduler.tree.register_metrics(pipeline.sim.metrics)

    # ------------------------------------------------------------------
    def _cycles(self, n: int) -> float:
        cache = self._cycles_cache
        sec = cache.get(n)
        if sec is None:
            sec = cache[n] = self.pipeline.config.seconds(n)
        return sec

    def _class_lock(self, classid: str) -> Lock:
        lock = self._class_locks.get(classid)
        if lock is None:
            lock = Lock(self.pipeline.sim, name=f"class-{classid}")
            self._class_locks[classid] = lock
        return lock

    @property
    def lock_contention(self) -> float:
        """Total simulated seconds workers spent waiting on blocking
        locks (0 in trylock mode, where nobody ever waits)."""
        total = sum(lock.total_wait_time for lock in self._class_locks.values())
        if self._global_lock is not None:
            total += self._global_lock.total_wait_time
        return total

    # ------------------------------------------------------------------
    def handle(self, packet: Packet) -> Generator:
        pipeline = self.pipeline
        sim = pipeline.sim
        config = pipeline.config
        costs = config.costs
        lock_mode = config.lock_mode
        cycles = self._cycles

        # --- labeling function ---------------------------------------
        labeler = self.labeler
        cache = labeler.cache
        hits_before = cache.hits if cache is not None else 0
        # sim._now (not the .now property): this generator reads the
        # clock several times per packet between yields.
        label = labeler.label(packet, sim._now)
        if label is None:
            return Verdict.DROP
        if cache is not None and cache.hits > hits_before:
            yield cycles(costs.emc_hit)
        else:
            yield cycles(
                costs.emc_hit + costs.classify_per_rule * max(1, len(labeler.classifier))
            )

        # --- scheduling function (Algorithm 1) ------------------------
        scheduler = self.scheduler
        path = scheduler.path_nodes(packet)
        scheduler.touch_path(path, sim._now)

        if lock_mode == "sequential":
            # Fig. 7(b): the entire scheduling function is single-
            # threaded — every worker serialises on one lock for the
            # whole decision.
            yield self._global_lock.acquire()
            try:
                verdict = yield from self._sched_body(packet, path, costs, "trylock")
            finally:
                self._global_lock.release()
            return verdict

        if lock_mode == "global_block":
            # Naive offload: one lock guards the whole tree's updates.
            yield self._global_lock.acquire()
            try:
                yield from self._update_loop(path, costs, blocking=False)
            finally:
                self._global_lock.release()
            verdict = yield from self._meter_and_borrow(packet, path, costs)
            return verdict

        if lock_mode == "per_class_block":
            verdict = yield from self._sched_body(packet, path, costs, lock_mode)
            return verdict

        # trylock — FlowValve's design and the hot default. The update
        # loop and meter/borrow bodies are inlined (instead of the
        # ``yield from`` helpers the other modes use) so each of the
        # ~4 yields per packet resumes through two generator frames,
        # not four. The yield sequence and all state transitions are
        # identical to _update_loop(blocking=False) + _meter_and_borrow.
        stats = scheduler.stats
        params = scheduler.params
        per_class = costs.sched_per_class
        trylock_cost = costs.update_trylock
        update_body = costs.update_body
        cyc = self._cycles_cache  # inline _cycles: ~4 lookups per packet
        accumulated = 0
        for node in path:
            accumulated += per_class
            if node.try_begin_update(sim._now):
                n = accumulated + update_body
                sec = cyc.get(n)
                yield sec if sec is not None else cycles(n)
                accumulated = 0
                node.perform_update(sim._now)
                node.end_update()
                stats.updates_run += 1
            else:
                accumulated += trylock_cost
                stats.updates_skipped += 1
        if accumulated:
            sec = cyc.get(accumulated)
            yield sec if sec is not None else cycles(accumulated)

        leaf = path[-1]
        size_bits = params.packet_bits(packet.size)
        sec = cyc.get(costs.meter)
        yield sec if sec is not None else cycles(costs.meter)
        if params.continuous_refill:
            leaf.bucket.refill(sim._now)
        color = leaf.bucket.meter(size_bits)
        borrowed_from = None
        if color is not MeterColor.GREEN:
            if params.borrow_enabled:
                for lender_id in packet.borrow_label:
                    lender = scheduler.tree.node(lender_id)
                    for leaf_lender in lender.leaf_descendants():
                        if leaf_lender.try_begin_update(sim._now):
                            yield cycles(costs.borrow_query + costs.update_body)
                            leaf_lender.perform_update(sim._now)
                            leaf_lender.end_update()
                            stats.updates_run += 1
                        else:
                            yield cycles(costs.borrow_query)
                        if leaf_lender.shadow.meter(size_bits) is MeterColor.GREEN:
                            leaf_lender.lent_bits += size_bits
                            if scheduler.tracer is not None:
                                scheduler.tracer.emit(
                                    sim._now, "core.sched", "borrow",
                                    borrower=path[-1].classid,
                                    lender=leaf_lender.classid,
                                    bits=size_bits,
                                )
                            borrowed_from = leaf_lender
                            break
                    if borrowed_from is not None:
                        break
            if borrowed_from is None:
                stats.dropped += 1
                stats.decisions += 1
                packet.mark_dropped(DropReason.SCHED_RED)
                return Verdict.DROP
        scheduler.commit(packet, path, borrowed_from, size_bits=size_bits)
        stats.decisions += 1
        return Verdict.FORWARD

    def fast_handler(self) -> Optional[Callable[[Packet], Generator]]:
        """Fast form exists only for trylock — the blocking modes need
        true lock interleaving between workers."""
        if self.pipeline.config.lock_mode == "trylock":
            return self.handle_fast
        return None

    def handle_fast(self, packet: Packet) -> Generator:
        """The trylock ``handle`` path with its fixed-cost yields
        pre-aggregated (DESIGN.md §7).

        Replaces the worker's four-plus wakeups per packet (fixed
        overhead, EMC, trailing skip-cost, meter) with two, while
        keeping every shared-state operation at the exact wall time the
        multi-yield path performs it:

        * the labeler runs at the *virtual* timestamp ``now + fixed
          overhead``; only worker chains touch labeler state and the
          constant shift preserves their relative order, so hit/miss
          outcomes and cache evolution are unchanged;
        * the first resume lands at ``(now + overhead) + emc`` —
          accumulated term by term on a virtual clock and yielded as
          an absolute :class:`~repro.sim.At` target, so the timestamp
          is bit-identical to the slow path's chained resumes;
        * update-epoch wins and borrow queries still yield for real:
          their flag-hold windows are what other workers observe;
        * the trailing skip-cost and the meter charge merge into one
          resume — the slow path performs no shared-state operation
          between those two wakeups, so the merge is exact.
        """
        pipeline = self.pipeline
        sim = pipeline.sim
        costs = pipeline.config.costs
        cycles = self._cycles
        cyc = self._cycles_cache

        # --- labeling function, at virtual time now+fixed_overhead ----
        labeler = self.labeler
        cache = labeler.cache
        hits_before = cache.hits if cache is not None else 0
        t = sim._now + cycles(costs.fixed_overhead)
        label = labeler.label(packet, t)
        if label is None:
            # The worker still pays the fixed overhead before dropping.
            yield At(t)
            return Verdict.DROP
        if cache is not None and cache.hits > hits_before:
            t += cycles(costs.emc_hit)
        else:
            t += cycles(
                costs.emc_hit + costs.classify_per_rule * max(1, len(labeler.classifier))
            )
        at = At(t)

        # --- scheduling function (Algorithm 1), at real wall times ----
        scheduler = self.scheduler
        path = scheduler.path_nodes(packet)
        stats = scheduler.stats
        params = scheduler.params
        per_class = costs.sched_per_class
        trylock_cost = costs.update_trylock

        # Wakeup elision (DESIGN.md §7): the slow sequence wakes at the
        # first resume time ``t``, probes every path node's update
        # trylock (all at wall time ``t``) and touches the path at
        # ``t``. When, judged with current state, every path node (a)
        # is not mid-update, (b) cannot be due for an update at ``t``
        # (``t - last_update < update_interval`` — and last_update only
        # grows, so no probe between now and ``t`` can begin one
        # either), and (c) stays active through ``t`` under its current
        # last_seen, the walk is provably skip-only and its only write
        # is ``touch_path(path, t)`` — which, done *early* at wall-now
        # with the same timestamp ``t``, is unobservable: last_seen has
        # max() semantics and (c) guarantees every ``is_active`` read
        # in (now, t] answers True in both orders. The first wakeup
        # then merges into the second (skip-cost + meter) resume.
        interval = params.update_interval
        expire = params.expire_after
        elide = True
        for node in path:
            if (
                node.updating
                or t - node.last_update >= interval
                or t - node.last_seen > expire
            ):
                elide = False
                break
        if elide:
            n_nodes = len(path)
            n = n_nodes * (per_class + trylock_cost)
            t2 = t
            sec = cyc.get(n)
            t2 += sec if sec is not None else cycles(n)
            sec = cyc.get(costs.meter)
            t2 += sec if sec is not None else cycles(costs.meter)
            # Horizon cut: the slow sequence counts its skips (and
            # touches the path) at the *first* wakeup; eliding performs
            # them now. Both land inside a finished run iff the merged
            # wakeup does — a train cut by the run horizon must keep
            # the slow wakeups so end-of-run state matches exactly.
            if t2 > sim._horizon:
                elide = False
        if elide:
            scheduler.touch_path(path, t)
            stats.updates_skipped += n_nodes
            at.time = t2
            yield at
        else:
            yield at
            scheduler.touch_path(path, sim._now)
            update_body = costs.update_body
            accumulated = 0
            for node in path:
                accumulated += per_class
                if node.try_begin_update(sim._now):
                    n = accumulated + update_body
                    sec = cyc.get(n)
                    yield sec if sec is not None else cycles(n)
                    accumulated = 0
                    node.perform_update(sim._now)
                    node.end_update()
                    stats.updates_run += 1
                else:
                    accumulated += trylock_cost
                    stats.updates_skipped += 1
            t = sim._now
            if accumulated:
                sec = cyc.get(accumulated)
                t += sec if sec is not None else cycles(accumulated)
            sec = cyc.get(costs.meter)
            t += sec if sec is not None else cycles(costs.meter)
            at.time = t
            yield at

        leaf = path[-1]
        size_bits = params.packet_bits(packet.size)
        if params.continuous_refill:
            leaf.bucket.refill(sim._now)
        color = leaf.bucket.meter(size_bits)
        borrowed_from = None
        if color is not MeterColor.GREEN:
            if params.borrow_enabled:
                for lender_id in packet.borrow_label:
                    lender = scheduler.tree.node(lender_id)
                    for leaf_lender in lender.leaf_descendants():
                        if leaf_lender.try_begin_update(sim._now):
                            yield cycles(costs.borrow_query + costs.update_body)
                            leaf_lender.perform_update(sim._now)
                            leaf_lender.end_update()
                            stats.updates_run += 1
                        else:
                            yield cycles(costs.borrow_query)
                        if leaf_lender.shadow.meter(size_bits) is MeterColor.GREEN:
                            leaf_lender.lent_bits += size_bits
                            if scheduler.tracer is not None:
                                scheduler.tracer.emit(
                                    sim._now, "core.sched", "borrow",
                                    borrower=path[-1].classid,
                                    lender=leaf_lender.classid,
                                    bits=size_bits,
                                )
                            borrowed_from = leaf_lender
                            break
                    if borrowed_from is not None:
                        break
            if borrowed_from is None:
                stats.dropped += 1
                stats.decisions += 1
                packet.mark_dropped(DropReason.SCHED_RED)
                return Verdict.DROP
        scheduler.commit(packet, path, borrowed_from, size_bits=size_bits)
        stats.decisions += 1
        return Verdict.FORWARD

    def _sched_body(self, packet, path, costs, lock_mode) -> Generator:
        if lock_mode == "per_class_block":
            yield from self._update_loop(path, costs, blocking=True)
        else:  # trylock — FlowValve's design
            yield from self._update_loop(path, costs, blocking=False)
        verdict = yield from self._meter_and_borrow(packet, path, costs)
        return verdict

    def _update_loop(self, path, costs, blocking: bool) -> Generator:
        """Walk the path's update attempts.

        Cycle costs of skipped attempts are *accumulated* and charged
        in one yield (fewer kernel events, identical total time); an
        acquired update still charges its body across simulated time
        while the flag is held — that hold window is what makes other
        workers skip, the paper's "only one core executes this
        procedure at a time".
        """
        sim = self.pipeline.sim
        stats = self.scheduler.stats
        cycles = self._cycles
        per_class = costs.sched_per_class
        trylock_cost = costs.update_trylock
        update_body = costs.update_body
        accumulated = 0
        for node in path:
            accumulated += per_class
            if blocking:
                # The lock acquire itself is an atomic probe, same cost
                # as the trylock path's.
                accumulated += trylock_cost
                yield cycles(accumulated)
                accumulated = 0
                lock = self._class_lock(node.classid)
                yield lock.acquire()
                try:
                    if node.try_begin_update(sim.now):
                        yield cycles(update_body)
                        node.perform_update(sim.now)
                        node.end_update()
                        stats.updates_run += 1
                    else:
                        stats.updates_skipped += 1
                finally:
                    lock.release()
            else:
                if node.try_begin_update(sim.now):
                    yield cycles(accumulated + update_body)
                    accumulated = 0
                    node.perform_update(sim.now)
                    node.end_update()
                    stats.updates_run += 1
                else:
                    accumulated += trylock_cost
                    stats.updates_skipped += 1
        if accumulated:
            yield cycles(accumulated)

    def _meter_and_borrow(self, packet, path, costs) -> Generator:
        sim = self.pipeline.sim
        scheduler = self.scheduler
        stats = scheduler.stats
        params = scheduler.params
        cycles = self._cycles
        leaf = path[-1]
        size_bits = params.packet_bits(packet.size)
        yield cycles(costs.meter)
        if params.continuous_refill:
            leaf.bucket.refill(sim.now)
        color = leaf.bucket.meter(size_bits)
        borrowed_from = None
        if color is not MeterColor.GREEN:
            if params.borrow_enabled:
                for lender_id in packet.borrow_label:
                    lender = scheduler.tree.node(lender_id)
                    for leaf_lender in lender.leaf_descendants():
                        if leaf_lender.try_begin_update(sim.now):
                            yield cycles(costs.borrow_query + costs.update_body)
                            leaf_lender.perform_update(sim.now)
                            leaf_lender.end_update()
                            stats.updates_run += 1
                        else:
                            yield cycles(costs.borrow_query)
                        if leaf_lender.shadow.meter(size_bits) is MeterColor.GREEN:
                            leaf_lender.lent_bits += size_bits
                            if scheduler.tracer is not None:
                                scheduler.tracer.emit(
                                    sim._now, "core.sched", "borrow",
                                    borrower=path[-1].classid,
                                    lender=leaf_lender.classid,
                                    bits=size_bits,
                                )
                            borrowed_from = leaf_lender
                            break
                    if borrowed_from is not None:
                        break
            if borrowed_from is None:
                stats.dropped += 1
                stats.decisions += 1
                packet.mark_dropped(DropReason.SCHED_RED)
                return Verdict.DROP
        scheduler.commit(packet, path, borrowed_from, size_bits=size_bits)
        stats.decisions += 1
        return Verdict.FORWARD
