"""The assembled SmartNIC processing pipeline (paper Fig. 4).

Data path::

    host VFs --submit()--> [buffer pool] --DMA--> dispatch queue
        --> worker MEs (fixed overhead + NicApp: label, schedule)
        --> reorder system --> shared Tx ring --> traffic manager/MAC
        --> wire (Link) --> receiver

Every stage is bounded; drops are marked with a
:class:`~repro.net.packet.DropReason` and reported through the
``on_drop`` hook so host congestion control can react.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional

from ..core.scheduling import Verdict
from ..net.link import Link
from ..net.packet import DropReason, Packet, PacketFactory
from ..net.sink import PacketSink
from ..sim import Simulator, Store
from ..sim.events import EventRun
from .apps import FlowValveNicApp, NicApp
from .buffer_pool import BufferPool
from .config import NicConfig
from .reorder import ReorderBuffer
from .rings import TxRing
from .traffic_manager import TrafficManager

__all__ = ["NicPipeline"]

_INF = float("inf")


class _IngressBurst:
    """Bookkeeping for one precomputed emission train (DESIGN.md §7).

    Shared between the pipeline (arrival cursor) and the submitting
    sender (lazy sent-packet counting): emissions whose instant has
    passed count as sent even before their DMA-completion run item
    executes, and a congestion-feedback ``cutoff`` retires every
    emission strictly after it.
    """

    __slots__ = (
        "times", "cutoff", "done", "seen",
        "make", "size", "flow", "app", "vf_index", "conn_id", "n", "factory",
    )

    def __init__(
        self, times: List[float], make, size, flow, app, vf_index, conn_id
    ):
        #: Ascending emission instants of this train.
        self.times = times
        #: Emissions strictly after this instant are retired (TCP
        #: feedback rolls back the tail of an in-flight train).
        self.cutoff = _INF
        #: Arrival items executed and admitted (not retired).
        self.done = 0
        #: Run items executed, including retired ones.
        self.seen = 0
        # Per-train constants of every arrival item, carried here so a
        # run item is just ``(rec, t_emit)`` — the arrival callback is
        # the hottest argument unpack in the simulator.
        self.make = make
        self.size = size
        self.flow = flow
        self.app = app
        self.vf_index = vf_index
        self.conn_id = conn_id
        self.n = len(times)
        #: The plain PacketFactory behind ``make``, or None when the
        #: maker is custom — lets the fluid lane mint packets without
        #: the two call frames (resolved once per train, not per item).
        maker = getattr(make, "__self__", None)
        self.factory = (
            maker
            if maker is not None
            and maker.__class__ is PacketFactory
            and getattr(make, "__func__", None) is PacketFactory.make
            else None
        )

    def count_at(self, now: float) -> int:
        """Valid emissions with instant <= min(now, cutoff)."""
        cutoff = self.cutoff
        limit = now if now < cutoff else cutoff
        return bisect_right(self.times, limit)

    def settled(self, now: float) -> bool:
        """True when no future clock advance can change count_at."""
        return self.cutoff <= now or self.times[-1] <= now


class _TraceTrain:
    """One multi-flow emission train from a trace workload window.

    The :class:`_IngressBurst` analogue for batched trace generation
    (DESIGN.md §12): a window's emissions across *many* flows arrive
    pre-merged by time, with parallel per-item ``flows``/``sizes``
    arrays instead of per-train constants — a million single-packet
    flows would otherwise cost a million one-item trains and a
    quadratic merge into the shared ingress run. Lazy-counting
    protocol (``count_at``/``settled``/``done``) matches
    ``_IngressBurst`` so ``NicPipeline.submitted`` folds both alike.
    Trace trains carry no congestion feedback: ``cutoff`` stays +inf.
    """

    __slots__ = (
        "times", "flows", "sizes", "cutoff", "done", "seen",
        "make", "app", "vf_index", "n", "factory",
    )

    def __init__(self, times: List[float], flows, sizes, make, app, vf_index):
        self.times = times
        self.flows = flows
        self.sizes = sizes
        self.cutoff = _INF
        self.done = 0
        self.seen = 0
        self.make = make
        self.app = app
        self.vf_index = vf_index
        self.n = len(times)
        maker = getattr(make, "__self__", None)
        self.factory = (
            maker
            if maker is not None
            and maker.__class__ is PacketFactory
            and getattr(make, "__func__", None) is PacketFactory.make
            else None
        )

    count_at = _IngressBurst.count_at
    settled = _IngressBurst.settled


class NicPipeline:
    """The full NIC model: submit packets in, frames come out the wire.

    Parameters
    ----------
    sim: the shared simulator.
    config: NIC geometry and cycle budgets.
    app: the per-packet worker application (FlowValve or pass-through).
    receiver: delivered-frame callback (usually ``PacketSink.receive``).
    on_drop: called with every packet the NIC discards, anywhere in the
        pipeline (buffer exhaustion, queue overflow, scheduler drop).
    wire_propagation: physical propagation delay of the attached wire.
    boundary: a ``BoundaryOutbox`` standing in for the remote receiver
        of a cross-shard wire (DESIGN.md §11). Mutually exclusive with
        ``receiver``: deliveries become ``WireRecord`` appends on the
        outbox instead of local sink folds, via the same lazy-delivery
        route a ``PacketSink`` uses — which keeps the fluid lane
        eligible on boundary NICs.
    """

    def __init__(
        self,
        sim: Simulator,
        config: NicConfig,
        app: NicApp,
        receiver: Optional[Callable[[Packet], None]] = None,
        on_drop: Optional[Callable[[Packet], None]] = None,
        wire_propagation: float = 1e-6,
        boundary=None,
    ):
        self.sim = sim
        self.config = config
        self.app = app
        self.on_drop = on_drop
        self.link = Link(
            sim,
            config.line_rate_bps,
            propagation_delay=wire_propagation + config.tx_fixed_latency,
            receiver=receiver,
            name="nic-wire",
        )
        # The batched fast path (DESIGN.md §7) engages only while
        # observability is off: traces and metrics sample mid-packet
        # state the pre-aggregated path doesn't stop at.
        fast = config.fast_path and not sim.tracer.enabled and not sim.metrics.enabled
        #: True when this pipeline runs the batched egress + lazy
        #: buffer-return fast path (bit-identical to the slow path).
        self.fast_path = fast
        #: Max emissions per precomputed ingress train; 0 disables
        #: burst ingress (slow path, tracing, metrics, or config).
        self.ingress_burst = config.ingress_burst if fast else 0
        # Lazy sink deliveries: when the fast path is on and the
        # receiver is a plain PacketSink with no delivery hook, link
        # deliveries fold into the sink's tallies at observation time
        # instead of costing one kernel event per frame.
        if boundary is not None:
            # A boundary NIC's wire terminates in another shard domain:
            # every delivery is a WireRecord append on the outbox, an
            # inherently lazy route (records are only read at window
            # barriers), so it is installed regardless of fast mode.
            self.link.enable_lazy_delivery(boundary)
        elif fast and receiver is not None:
            sink = getattr(receiver, "__self__", None)
            if (
                sink is not None
                and sink.__class__ is PacketSink
                and getattr(receiver, "__func__", None) is PacketSink.receive
                and sink.on_delivery is None
            ):
                self.link.enable_lazy_delivery(sink)
        self.tx_ring = TxRing(sim, depth=config.tx_ring_depth, virtual=fast)
        self.traffic_manager = TrafficManager(
            sim, self.tx_ring, self.link,
            on_sent=self._on_sent,
            on_sent_at=self._on_sent_at if fast else None,
            fast=fast,
        )
        self.dispatch = Store(sim, capacity=config.dispatch_depth, name="nic-dispatch")
        self.buffers = BufferPool(sim, config.buffer_count, config.buffer_recycle_delay)
        emit = self._emit_to_tx_fast if fast else self._emit_to_tx
        self._emit = emit
        self.reorder = None
        if config.reorder_enabled:
            self.reorder = ReorderBuffer(
                emit, sim=sim,
                emit_burst=self._emit_burst if fast else None,
            )
        # --- statistics ------------------------------------------------
        self._submitted = 0
        self._ingress_bursts: List[_IngressBurst] = []
        self.forwarded = 0
        self.dropped = 0
        self.drops_by_reason = {reason: 0 for reason in DropReason}
        # --- observability ---------------------------------------------
        # The enabled tracer, or None: every emission site is a single
        # identity check when observability is off (the default), so
        # the PR-1 hot-path wins hold.
        tracer = sim.tracer
        self._trace = tracer if tracer.enabled else None
        metrics = sim.metrics
        if metrics.enabled:
            metrics.probe("nic.submitted", lambda: self.submitted)
            metrics.probe("nic.forwarded", lambda: self.forwarded)
            metrics.probe("nic.dropped", lambda: self.dropped)
            metrics.probe("nic.dispatch.depth", lambda: len(self.dispatch))
            metrics.probe("nic.tx_ring.depth", lambda: len(self.tx_ring))
            metrics.probe("nic.tx_ring.max_occupancy", lambda: self.tx_ring.max_occupancy)
            metrics.probe("nic.buffers.free", lambda: self.buffers.free)
            metrics.probe("nic.buffers.min_free", lambda: self.buffers.min_free)
            if self.reorder is not None:
                metrics.probe("nic.reorder.in_flight", lambda: self.reorder.in_flight)
                metrics.probe("nic.reorder.parked", lambda: self.reorder.parked)
                metrics.probe("nic.reorder.max_parked", lambda: self.reorder.max_parked)
            self._drop_counters = {
                reason: metrics.counter(f"nic.drops.{reason.value}") for reason in DropReason
            }
        else:
            self._drop_counters = None
        app.bind(self)
        # The app may provide a pre-aggregated handler (single-wakeup
        # packet path); without one the generic loop runs even in fast
        # mode (the egress/buffer fast paths still apply).
        fast_handle = app.fast_handler() if fast else None
        self._fast_handle = fast_handle
        self._arrive_dma = self._arrive_fast if fast else self._arrive
        #: Virtual-clock override for deferred drops (the fluid lane
        #: replays completions at their original timestamps); read by
        #: :meth:`_drop`'s lazy buffer-return branch. None = wall clock.
        self._drop_now_override = None
        worker = self._worker_fast if fast_handle is not None else self._worker
        self._workers = [sim.process(worker(i)) for i in range(config.n_workers)]
        # The fluid fast-forward lane (DESIGN.md §7) engages only when
        # every observation channel it bypasses is already lazy or
        # absent: the FlowValve trylock fast handler (whose elided
        # branch it replays analytically), lazy sink deliveries, and no
        # per-drop callback. Anything else falls back to the per-packet
        # fast path, which is the reference it must match bit for bit.
        self._fluid = None
        #: Shared ingress run merging every sender's burst train while
        #: the fluid lane is on (see :meth:`submit_burst`).
        self._ingress_run = None
        if (
            config.fluid
            and fast
            and getattr(fast_handle, "__func__", None) is FlowValveNicApp.handle_fast
            and self.link._lazy_sink is not None
            and on_drop is None
        ):
            from .fluid import FluidLane

            self._fluid = FluidLane(self)
            self._arrive_dma = self._fluid.arrival

    # ------------------------------------------------------------------
    @classmethod
    def with_flowvalve(
        cls,
        sim: Simulator,
        config: NicConfig,
        frontend,
        receiver: Optional[Callable[[Packet], None]] = None,
        on_drop: Optional[Callable[[Packet], None]] = None,
        wire_propagation: float = 1e-6,
        boundary=None,
    ) -> "NicPipeline":
        """Assemble a pipeline running a FlowValve front end's policy."""
        app = FlowValveNicApp(frontend.labeler, frontend.scheduler)
        return cls(sim, config, app, receiver=receiver, on_drop=on_drop,
                   wire_propagation=wire_propagation, boundary=boundary)

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    @property
    def submitted(self) -> int:
        """Packets offered to the NIC up to the current time.

        With burst ingress, emissions whose instant has passed but
        whose DMA-completion run item has not executed yet still count
        (lazy, like the sink tallies) — so the counter reads the same
        as the per-packet route at any observation point.
        """
        n = self._submitted
        bursts = self._ingress_bursts
        if bursts:
            now = self.sim._now
            for rec in bursts:
                n += rec.count_at(now) - rec.done
        return n

    def submit(self, packet: Packet) -> bool:
        """Offer one packet from a host VF queue.

        Returns False when the NIC had to drop it at ingress (no free
        buffer). Accepted packets arrive at the dispatch queue after
        the PCIe DMA latency.
        """
        self._submitted += 1
        packet.nic_arrival = self.sim._now  # hot path: skip the property
        fluid = self._fluid
        if fluid is not None:
            # Deferred fluid completions release buffers lazily; their
            # matured release_at entries must exist before this
            # admission decision reads the pool.
            micro = fluid._micro
            if micro and micro[0][0] <= self.sim._now:
                fluid._flush(self.sim._now)
        if not self.buffers.try_allocate():
            self._drop(packet, DropReason.NO_BUFFER, release_buffer=False)
            return False
        self.sim.schedule(self.config.rx_dma_latency, self._arrive_dma, packet)
        return True

    def submit_burst(
        self,
        make: Callable[..., Packet],
        times: List[float],
        packet_size: int,
        flow,
        app: str,
        vf_index: int,
        conn_id: Optional[int] = None,
    ) -> _IngressBurst:
        """Offer a precomputed train of future emissions in one call.

        *times* are ascending absolute emission instants (>= now). The
        whole train's DMA completions enter the kernel as a single
        run-lane entry (``EventQueue.push_run``): one heap operation
        for the burst instead of one event per packet. Admission — the
        buffer-allocation decision and any NO_BUFFER drop — stays a
        per-arrival decision, taken as of each emission instant
        (``BufferPool.try_allocate_asof``); packets are created inside
        the arrival items so factory sequence numbers are assigned in
        arrival order, exactly as per-packet ``submit`` would.

        Returns the shared :class:`_IngressBurst` record; the sender
        uses it for lazy sent-packet counting and (TCP) to retire the
        unsent tail of the train on congestion feedback via ``cutoff``.
        """
        rec = _IngressBurst(times, make, packet_size, flow, app, vf_index, conn_id)
        self._ingress_bursts.append(rec)
        latency = self.config.rx_dma_latency
        fluid = self._fluid
        # With the lane on, the whole arrival chain runs in one fused
        # frame (flush + admission + absorb) — see FluidLane.
        arrive = self._burst_arrival if fluid is None else fluid.burst_arrival
        entries = [(t + latency, arrive, (rec, t)) for t in times]
        if self._fluid is not None:
            # Fluid lane on: merge every sender's train into ONE shared
            # run so concurrent senders stop shredding each other's
            # trains into per-item drain segments (item (time, seq)
            # order — and hence behavior — is unchanged; only the
            # executed-event count drops). Off, each burst keeps its
            # own run so the fallback reproduces the PR 5 counts
            # exactly.
            self.sim._queue.merge_run(self.ingress_run(), entries)
        else:
            self.sim._queue.push_run(entries)
        return rec

    def submit_trace(
        self,
        make: Callable[..., Packet],
        times: List[float],
        flows: List,
        sizes: List[int],
        app: str,
        vf_index: int = 0,
    ) -> _TraceTrain:
        """Offer one window's multi-flow emission train in one call.

        *times* are ascending absolute emission instants (>= now), with
        parallel *flows* (five-tuples) and *sizes* (minted packet
        sizes) — the batched trace workload pre-merges every active
        flow's instants for the window and hands the NIC a single
        train, so ingress costs one run merge per *window* instead of
        one heap event per packet (or one train per flow, whose
        interleaved merges into the shared run would be quadratic in
        the flow count). Admission and packet minting follow the
        ``submit_burst`` contract: per-arrival buffer decisions as-of
        each instant, factory sequence numbers in arrival order.
        """
        rec = _TraceTrain(times, flows, sizes, make, app, vf_index)
        self._ingress_bursts.append(rec)
        latency = self.config.rx_dma_latency
        fluid = self._fluid
        arrive = self._trace_arrival if fluid is None else fluid.trace_arrival
        entries = [
            (times[i] + latency, arrive, (rec, i)) for i in range(rec.n)
        ]
        if fluid is not None:
            # One shared run per pipeline, as in submit_burst — window
            # trains append in time order, so each merge is O(window).
            self.sim._queue.merge_run(self.ingress_run(), entries)
        else:
            self.sim._queue.push_run(entries)
        return rec

    def ingress_run(self) -> EventRun:
        """The shared fluid-mode ingress run, created/revived on demand.

        Every producer that feeds this pipeline while the fluid lane is
        on — local burst senders and remote barrier trains alike —
        merges into this one run, so concurrent arrival streams cost
        one drained segment instead of shredding each other into
        per-item heap pops.
        """
        run = self._ingress_run
        if run is None or run.cancelled:
            run = self._ingress_run = EventRun()
        return run

    def _burst_arrival(self, rec: _IngressBurst, t_emit: float) -> None:
        fluid = self._fluid
        if fluid is not None:
            # As in submit(): matured fluid buffer returns must land in
            # the pool before try_allocate_asof(t_emit) below.
            micro = fluid._micro
            if micro and micro[0][0] <= self.sim._now:
                fluid._flush(self.sim._now)
        rec.seen += 1
        if rec.seen == rec.n:
            self._ingress_bursts.remove(rec)
        if t_emit > rec.cutoff:
            return  # retired by congestion feedback before its instant
        rec.done += 1
        self._submitted += 1
        conn_id = rec.conn_id
        if conn_id is None:
            packet = rec.make(
                rec.size, rec.flow, t_emit, app=rec.app, vf_index=rec.vf_index
            )
        else:
            packet = rec.make(
                rec.size, rec.flow, t_emit,
                app=rec.app, vf_index=rec.vf_index, conn_id=conn_id,
            )
        packet.nic_arrival = t_emit
        if not self.buffers.try_allocate_asof(t_emit):
            # Same decision the per-packet route takes at t_emit; the
            # drop is *recorded* here at arrival (t_emit + DMA latency)
            # — the only burst-mode timing shift, see DESIGN.md §7.
            self._drop(packet, DropReason.NO_BUFFER, release_buffer=False)
            return
        self._arrive_dma(packet)

    def _trace_arrival(self, rec: _TraceTrain, i: int) -> None:
        """Per-item DMA completion of a trace train (fluid lane off —
        with the lane on :meth:`FluidLane.trace_arrival` fuses this)."""
        fluid = self._fluid
        if fluid is not None:
            micro = fluid._micro
            if micro and micro[0][0] <= self.sim._now:
                fluid._flush(self.sim._now)
        rec.seen += 1
        if rec.seen == rec.n:
            self._ingress_bursts.remove(rec)
        t_emit = rec.times[i]
        if t_emit > rec.cutoff:
            return
        rec.done += 1
        self._submitted += 1
        packet = rec.make(
            rec.sizes[i], rec.flows[i], t_emit, app=rec.app, vf_index=rec.vf_index
        )
        packet.nic_arrival = t_emit
        if not self.buffers.try_allocate_asof(t_emit):
            self._drop(packet, DropReason.NO_BUFFER, release_buffer=False)
            return
        self._arrive_dma(packet)

    def _arrive(self, packet: Packet) -> None:
        if not self.dispatch.try_put(packet):
            self._drop(packet, DropReason.QUEUE_FULL)

    def _arrive_fast(self, packet: Packet) -> None:
        # Synchronous handoff to a parked worker (DESIGN.md §7): the
        # worker resumes inside this DMA-completion callback instead of
        # through a zero-delay event — the dominant per-packet handoff
        # when workers outnumber the offered load.
        if not self.dispatch.try_put_now(packet):
            self._drop(packet, DropReason.QUEUE_FULL)

    # ------------------------------------------------------------------
    # the worker micro-engines
    # ------------------------------------------------------------------
    def _worker(self, worker_id: int):
        """Run-to-completion loop of one worker ME.

        Per-packet state lives in hoisted locals: the loop runs for
        every packet of an experiment, so attribute chains
        (``self.config.costs...``) are resolved once, and the fixed
        overhead — a constant — is converted to seconds once.
        """
        dispatch_get = self.dispatch.get
        reorder = self.reorder
        handle = self.app.handle
        emit = self._emit
        drop = self._drop
        fixed_overhead = self.config.seconds(self.config.costs.fixed_overhead)
        forward = Verdict.FORWARD
        trace = self._trace
        sim = self.sim
        while True:
            packet: Packet = yield dispatch_get()
            ticket = reorder.take_ticket() if reorder is not None else -1
            yield fixed_overhead
            verdict = yield from handle(packet)
            if trace is not None:
                trace.emit(
                    sim._now, "nic.worker", "verdict",
                    verdict=verdict.value, worker=worker_id,
                    app=packet.app, size=packet.size,
                )
            if verdict is forward:
                if reorder is not None:
                    reorder.complete(ticket, packet)
                else:
                    emit(packet)
            else:
                if reorder is not None:
                    reorder.complete(ticket, None)
                reason = packet.drop_reason if packet.drop_reason is not None else DropReason.SCHED_RED
                drop(packet, reason, already_marked=True)

    def _worker_fast(self, worker_id: int):
        """Fast-path worker loop (DESIGN.md §7).

        Differs from :meth:`_worker` in two ways, both invisible to the
        model: the app's pre-aggregated handler charges the fixed
        overhead itself (inside its first merged wakeup), and when the
        dispatch queue is non-empty the next packet is taken
        synchronously (``try_get``) instead of paying a resume event
        for a get that would succeed immediately.
        """
        dispatch_get = self.dispatch.get
        try_get = self.dispatch.try_get
        reorder = self.reorder
        handle = self._fast_handle
        emit = self._emit
        drop = self._drop
        forward = Verdict.FORWARD
        while True:
            packet: Packet = yield dispatch_get()
            while True:
                ticket = reorder.take_ticket() if reorder is not None else -1
                verdict = yield from handle(packet)
                if verdict is forward:
                    if reorder is not None:
                        reorder.complete(ticket, packet)
                    else:
                        emit(packet)
                else:
                    if reorder is not None:
                        reorder.complete(ticket, None)
                    reason = packet.drop_reason if packet.drop_reason is not None else DropReason.SCHED_RED
                    drop(packet, reason, already_marked=True)
                packet = try_get()
                if packet is None:
                    break

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------
    def _emit_to_tx(self, packet: Packet) -> None:
        if self.tx_ring.offer(packet):
            self.forwarded += 1
        else:
            self._drop(packet, DropReason.QUEUE_FULL, already_marked=True)

    def _emit_to_tx_fast(self, packet: Packet) -> None:
        if self.traffic_manager.offer(packet):
            self.forwarded += 1
        else:
            self._drop(packet, DropReason.QUEUE_FULL, already_marked=True)

    def _emit_burst(self, packets: list) -> None:
        """Release a reorder run to egress in one batched call."""
        rejected = self.traffic_manager.offer_burst(packets)
        self.forwarded += len(packets) - len(rejected)
        for packet in rejected:
            self._drop(packet, DropReason.QUEUE_FULL, already_marked=True)

    def _on_sent(self, packet: Packet) -> None:
        self.buffers.release()

    def _on_sent_at(self, packet: Packet, finish: float) -> None:
        # Lazy fast-path buffer return: effective at serialisation
        # finish + recycle delay, folded in at the next observation.
        self.buffers.release_at(finish)

    # ------------------------------------------------------------------
    def _drop(
        self,
        packet: Packet,
        reason: DropReason,
        release_buffer: bool = True,
        already_marked: bool = False,
    ) -> None:
        if not already_marked or not packet.dropped:
            packet.mark_dropped(reason)
        self.dropped += 1
        # Tally under the *caller's* reason: an ``already_marked``
        # packet keeps its original mark (above), but this particular
        # discard happened for ``reason`` — e.g. a packet marked by an
        # earlier stage that then hits a full Tx ring must count as a
        # queue_full drop, not under its stale mark.
        self.drops_by_reason[reason] += 1
        if self._trace is not None:
            self._trace.emit(
                self.sim._now, "nic.pipeline", "drop",
                reason=reason.value, app=packet.app, size=packet.size,
                marked=packet.drop_reason.value if packet.drop_reason is not None else None,
            )
        if self._drop_counters is not None:
            self._drop_counters[reason].inc()
        if release_buffer:
            if self.fast_path:
                # Lazy route: same effective relink time as release()
                # (now + recycle delay), no simulator event. The fluid
                # lane overrides the clock when replaying a deferred
                # drop at its original completion time.
                now = self._drop_now_override
                if now is None:
                    now = self.sim._now
                self.buffers.release_at(now)
            else:
                self.buffers.release()
        if self.on_drop is not None:
            self.on_drop(packet)

    # ------------------------------------------------------------------
    @property
    def drop_ratio(self) -> float:
        """Dropped over submitted, 0.0 before any traffic."""
        return self.dropped / self.submitted if self.submitted else 0.0

    def stats_summary(self) -> str:
        """One-paragraph text summary for reports."""
        reasons = ", ".join(
            f"{reason.value}={count}" for reason, count in self.drops_by_reason.items() if count
        )
        return (
            f"NIC: submitted={self.submitted} forwarded={self.forwarded} "
            f"dropped={self.dropped} ({reasons or 'none'}) "
            f"tx_ring_max={self.tx_ring.max_occupancy} "
            f"buffers_min_free={self.buffers.min_free}"
        )
