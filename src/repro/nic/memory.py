"""The NFP memory hierarchy, as access-latency classes.

The paper's Fig. 4 omits the memory units for space but the design
leans on them: QoS labels live in packet buffers (CTM), the scheduling
tree in shared memory reachable by every core (CLS/IMEM), and atomic
meter/counter instructions execute *at* the memory engine rather than
in the core, which is why per-packet metering scales across 50+ cores.

Latencies are in core cycles, taken from publicly documented NFP-6xxx
orders of magnitude. They feed :class:`~repro.nic.config.CycleCosts`:
an operation's budget = instruction work + the latencies of the
regions it touches (discounted by multithreaded latency hiding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["MemoryRegion", "MemoryHierarchy"]


@dataclass(frozen=True)
class MemoryRegion:
    """One addressable memory class on the NFP.

    Attributes
    ----------
    name: conventional region name (LMEM, CLS, CTM, IMEM, EMEM).
    read_cycles / write_cycles: round-trip latency seen by a thread.
    atomic_cycles: latency of an atomic engine op (add, test-and-set,
        meter) executed at the memory unit.
    size_bytes: capacity (documentation; the model doesn't allocate).
    """

    name: str
    read_cycles: int
    write_cycles: int
    atomic_cycles: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.read_cycles < 0 or self.write_cycles < 0 or self.atomic_cycles < 0:
            raise ValueError(f"{self.name}: latencies must be non-negative")


class MemoryHierarchy:
    """The standard five-level NFP hierarchy with lookup by name."""

    def __init__(self) -> None:
        self._regions: Dict[str, MemoryRegion] = {}
        for region in (
            # Per-thread local memory: register-speed scratch.
            MemoryRegion("LMEM", read_cycles=1, write_cycles=1, atomic_cycles=0, size_bytes=1024),
            # Cluster local scratch: shared within an ME island.
            MemoryRegion("CLS", read_cycles=30, write_cycles=30, atomic_cycles=40, size_bytes=64 * 1024),
            # Cluster target memory: packet buffers live here.
            MemoryRegion("CTM", read_cycles=60, write_cycles=60, atomic_cycles=80, size_bytes=256 * 1024),
            # Internal SRAM: scheduling tree shared state.
            MemoryRegion("IMEM", read_cycles=150, write_cycles=150, atomic_cycles=180, size_bytes=4 * 1024 * 1024),
            # External DRAM: flow tables, large rings.
            MemoryRegion("EMEM", read_cycles=300, write_cycles=300, atomic_cycles=350, size_bytes=2 * 1024 ** 3),
        ):
            self._regions[region.name] = region

    def region(self, name: str) -> MemoryRegion:
        """Lookup by region name; raises ``KeyError`` on unknown."""
        return self._regions[name]

    def __iter__(self):
        return iter(self._regions.values())

    def hidden(self, cycles: int, threads_per_me: int) -> int:
        """Effective stall cycles after multithreaded latency hiding.

        With T threads per micro-engine, while one thread waits on
        memory the other T−1 issue instructions, so only ~1/T of the
        raw latency shows up as lost issue slots in steady state.
        """
        if threads_per_me <= 1:
            return cycles
        return max(1, cycles // threads_per_me)
