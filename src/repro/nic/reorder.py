"""The reorder system (paper Fig. 4).

Workers finish packets out of order (different cycle budgets, update
lock luck); the reorder system "sends packets out roughly according to
their incoming sequences". The model is exact rather than rough: each
packet takes a ticket at dispatch, and completions are released to the
Tx ring strictly in ticket order. Dropped packets release their ticket
without emitting anything — otherwise one early drop would stall the
whole egress.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..net.packet import Packet

__all__ = ["ReorderBuffer"]


class ReorderBuffer:
    """In-order release of out-of-order completions.

    ``emit`` is called synchronously (in ticket order) with each packet
    that should proceed to the Tx ring.
    """

    def __init__(
        self,
        emit: Callable[[Packet], None],
        sim=None,
        emit_burst: Optional[Callable[[list], None]] = None,
    ):
        self._emit = emit
        #: Optional burst release: when a head-of-line completion
        #: unparks a run, the whole run is handed over in one call
        #: (the fast path routes it to ``TrafficManager.offer_burst``).
        #: Must be semantically identical to calling ``emit`` per
        #: packet in the same order.
        self._emit_burst = emit_burst
        self._next_ticket = 0
        self._next_release = 0
        #: ticket -> (packet or None-for-drop)
        self._pending: Dict[int, Optional[Packet]] = {}
        #: Maximum number of completions parked waiting for a ticket.
        self.max_parked = 0
        # Observability: only the out-of-order paths emit (parking and
        # the catch-up release), so the common in-order fast path stays
        # untouched even with tracing on.
        self._sim = sim
        tracer = sim.tracer if sim is not None else None
        self._trace = tracer if (tracer is not None and tracer.enabled) else None

    def take_ticket(self) -> int:
        """Assign the next ingress sequence number."""
        ticket = self._next_ticket
        self._next_ticket += 1
        return ticket

    def complete(self, ticket: int, packet: Optional[Packet]) -> None:
        """Report a finished ticket; ``None`` means the packet was
        dropped and only frees the slot."""
        if ticket < self._next_release or ticket in self._pending:
            raise ValueError(f"ticket {ticket} completed twice")
        if ticket != self._next_release:
            # Out of order: park until every earlier ticket completes.
            # Only these completions count toward the watermark — a
            # head-of-line completion never waits.
            self._pending[ticket] = packet
            if len(self._pending) > self.max_parked:
                self.max_parked = len(self._pending)
            if self._trace is not None:
                self._trace.emit(
                    self._sim._now, "nic.reorder", "park",
                    ticket=ticket, parked=len(self._pending),
                    in_flight=self._next_ticket - self._next_release,
                )
            return
        # Head of line: release immediately (the common case touches
        # neither the dict nor the tracer), then drain any parked run.
        self._next_release = ticket + 1
        if not self._pending:
            if packet is not None:
                self._emit(packet)
            return
        if self._emit_burst is not None:
            # Batched release: the head-of-line packet plus the parked
            # run go out in one burst. Same packets, same order.
            burst = [packet] if packet is not None else []
            released_any = False
            while self._next_release in self._pending:
                released = self._pending.pop(self._next_release)
                self._next_release += 1
                released_any = True
                if released is not None:
                    burst.append(released)
            if burst:
                self._emit_burst(burst)
            if released_any and self._trace is not None:
                self._trace.emit(
                    self._sim._now, "nic.reorder", "release",
                    next_release=self._next_release, parked=len(self._pending),
                )
            return
        if packet is not None:
            self._emit(packet)
        released_any = False
        while self._next_release in self._pending:
            released = self._pending.pop(self._next_release)
            self._next_release += 1
            released_any = True
            if released is not None:
                self._emit(released)
        if released_any and self._trace is not None:
            self._trace.emit(
                self._sim._now, "nic.reorder", "release",
                next_release=self._next_release, parked=len(self._pending),
            )

    @property
    def in_flight(self) -> int:
        """Tickets taken but not yet released."""
        return self._next_ticket - self._next_release

    @property
    def parked(self) -> int:
        """Completions waiting for earlier tickets."""
        return len(self._pending)
