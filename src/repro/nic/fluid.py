"""The fluid fast-forward lane (DESIGN.md §7).

The batched ingress/egress fast paths still execute one merged worker
wakeup per packet. This lane removes that last kernel event for the
common case: a *quiescent* flow — EMC hit, resolved path, every class
on the path provably skip-only at the packet's walk time, and the
whole worst-case decision inside the run horizon. For such a packet
the entire remaining trajectory of the fast handler
(:meth:`FlowValveNicApp.handle_fast`, elided branch) is determined at
arrival: the merged wakeup time ``t2``, the meter outcome against a
closed-form token balance, and (on red) the borrow walk's bounded
yield chain.

Instead of parking a worker generator on an ``At(t2)`` kernel event,
the lane performs the arrival-side effects immediately (ticket, cache
refresh, early path touch — exactly what the real handler does before
its first yield) and *defers* the rest as micro-steps on a private
heap keyed ``(virtual_time, seq)``, with seqs drawn from the kernel
queue's shared counter at the same moments the real path would create
its resume events. Deferred steps are **flushed** — applied at their
original virtual times, in kernel order — before anything can observe
the affected state: at every later NIC arrival (and at ``submit``/
burst-arrival admission, ahead of the buffer-pool read) and at end of
``run()`` via the simulator's end hooks. Emissions and drops replay
through ``TrafficManager._now_override`` / the pipeline's
``_drop_now_override`` so egress arithmetic, lazy sink deliveries and
buffer returns all use the packet's true completion time.

Absorption runs in one of two modes. In **mixed** mode — whenever a
real worker may still be mid-packet (cold caches, an update-due spill
draining) — eligible packets are still absorbed, but each deferred
step is pushed as an ordinary kernel event at its exact virtual time,
so it interleaves with in-flight worker resumes by (time, seq) just
as the real wakeup would (one event per packet — still cheaper than a
generator resume, and crucially it keeps real workers parked). Once
every worker is parked and the dispatch queue is empty, the lane
**engages**: steps go to the private heap and cost zero kernel
events. A packet that fails eligibility *suspends* an engaged lane —
pending micro-steps are materialised as kernel events (ascending push
order preserves their relative order) — and takes the real path: a
parked worker picks it up synchronously, exactly as ``_arrive_fast``
would. The lane re-engages a few arrivals later, as soon as that
worker parks again; materialised steps may still be pending then,
which is safe because their kernel events flush matured private steps
before running.

Bit-identity argument: eligibility is judged with exactly the state
the real handler's elide branch would read at the same instant (the
elide conditions are already robust to concurrent workers — a trylock
on a non-due class cannot be won, and ``last_update`` only grows), so
the lane absorbs precisely the packets whose real trajectory is
determined at arrival. Each handler then replicates the corresponding
slice of the elided fast handler with the same float expressions (via
the app's cycle memo) at the same virtual timestamps: in mixed mode
the kernel orders the steps; while engaged, flush-before-observation
keeps shared state (tree flags, buckets, EMC, reorder tickets, TM/
link, buffer pool) coherent with what the real interleaving would
have produced. The only divergence window is an exact floating-point
time tie between a deferred step and an unrelated kernel event after
a suspend re-keys seqs — measure-zero under the jittered/offset
workloads this repo runs (see DESIGN.md §7).
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import List, Optional

from ..core.token_bucket import MeterColor
from ..errors import BufferExhausted
from ..net.boundary import BoundaryOutbox
from ..net.packet import DropReason, Packet
from ..units import ETH_OVERHEAD

__all__ = ["FluidLane"]


class _FluidJob:
    """In-flight per-packet state between deferred micro-steps."""

    __slots__ = ("packet", "ticket", "path", "size_bits", "lenders", "idx", "won")

    def __init__(self, packet, ticket: int, path: List):
        self.packet = packet
        self.ticket = ticket
        self.path = path
        self.size_bits = 0.0
        #: Flattened lender leaves (shared cached list), or None.
        self.lenders: Optional[List] = None
        #: Cursor into ``lenders`` during the borrow walk.
        self.idx = 0
        #: Whether the current lender's update trylock was won.
        self.won = False


class FluidLane:
    """Analytic fast-forward of quiescent-flow packets (one per-packet
    kernel event → zero). Constructed by :class:`NicPipeline` only when
    the full fast path is on, the app's fast handler is FlowValve's
    trylock handler, deliveries are lazy and no drop hook is attached.
    """

    def __init__(self, pipeline):
        self._pipeline = pipeline
        sim = pipeline.sim
        self._sim = sim
        self._queue = sim._queue
        app = pipeline.app
        self._labeler = app.labeler
        self._scheduler = app.scheduler
        self._cycles = app._cycles
        self._costs = pipeline.config.costs
        self._params = app.scheduler.params
        # Constant cycle->seconds conversions of the fast handler's
        # fixed cost terms, folded out of the per-packet path. Each is
        # the exact float the app's cycle memo returns for the same
        # argument, so the arithmetic below stays bit-identical.
        cyc = app._cycles
        costs = pipeline.config.costs
        self._c_label = cyc(costs.fixed_overhead)
        self._c_emc = cyc(costs.emc_hit)
        self._c_meter = cyc(costs.meter)
        self._c_borrow_lost = cyc(costs.borrow_query)
        self._c_borrow_won = cyc(costs.borrow_query + costs.update_body)
        #: n_nodes -> cyc(n * (sched_per_class + update_trylock)).
        self._c_walk: dict = {}
        self._dispatch = pipeline.dispatch
        self._reorder = pipeline.reorder
        self._tm = pipeline.traffic_manager
        self._overhead_bytes = app.scheduler.params.overhead_bytes
        self._continuous_refill = self._params.continuous_refill
        # Egress-chain bindings for the inlined forward epilogue (the
        # construction guard pins this exact chain: virtual Tx ring,
        # lazy sink deliveries, lazy buffer returns, no tracing).
        self._buffers = pipeline.buffers
        self._tx_ring = pipeline.tx_ring
        self._link = pipeline.link
        self._sink = pipeline.link._lazy_sink
        #: True when the lazy sink is a cross-shard BoundaryOutbox
        #: (DESIGN.md §11): deliveries become WireRecord appends at the
        #: exact virtual arrival time instead of PacketSink pendings.
        #: The sink's class never changes after construction, so this
        #: is resolved once. Never cache ``.records`` itself — barrier
        #: drains rebind it.
        self._boundary = self._sink.__class__ is BoundaryOutbox
        self._rate_bps = pipeline.link.rate_bps
        self._prop_delay = pipeline.link.propagation_delay
        self._n_workers = pipeline.config.n_workers
        #: Deferred steps may mature past a window-barrier ``run()``
        #: pause up to this absolute time (see Simulator.carry_horizon;
        #: the topology builder sets it to the spec duration before the
        #: pipeline is constructed).
        self._carry = sim.carry_horizon
        #: Absorb EMC-miss packets by replaying the classification walk
        #: analytically (config.fluid_classify — the million-flow trace
        #: regime, where every flow's first packet misses).
        self._absorb_miss = pipeline.config.fluid_classify
        #: cyc(emc_hit + classify_per_rule * max(1, n_rules)) — the
        #: miss-path labeling cost; resolved lazily (rule count is
        #: fixed after policy install).
        self._c_miss = None
        #: Deferred micro-steps: ``(virtual_time, seq, fn, job)`` heap.
        self._micro: list = []
        #: Engaged: absorbing eligible packets, deferring to the heap.
        #: Starts False — workers must be parked before first engage.
        self._active = False
        #: In-flight fluid jobs; each stands for one busy worker.
        self._live = 0
        #: Micro-steps materialised as kernel events, not yet executed.
        self._materialized = 0
        #: Borrow tuple -> flattened lender-leaf list.
        self._lender_cache: dict = {}
        #: Borrow tuple -> worst-case borrow-walk duration bound.
        self._lender_bound: dict = {}
        #: hierarchy tuple -> (path, [(node, interval, expire), ...]):
        #: the per-class params of the quiescence test, prefetched once
        #: (SchedulingParams never change after tree construction). The
        #: stored path is identity-checked against the scheduler's
        #: path cache on every hit, so a cache rebuild invalidates it.
        self._path_meta: dict = {}
        # --- statistics -------------------------------------------------
        #: Packets absorbed by the lane (no worker wakeup).
        self.absorbed = 0
        #: Of those, EMC misses absorbed via the analytic classify
        #: replay (0 unless ``fluid_classify`` is on).
        self.miss_absorbed = 0
        #: Packets that failed eligibility and took the real path.
        self.spills = 0
        #: Suspends that actually materialised pending steps.
        self.suspends = 0
        # Pending micro-steps own no kernel event: report their last
        # virtual time so open-ended runs still end at the right clock,
        # and flush them once the final clock is settled.
        sim.add_drain_hook(self._pending_time)
        sim.add_end_hook(self._end_flush)

    # ------------------------------------------------------------------
    # arrival entry (installed as the pipeline's ``_arrive_dma``)
    # ------------------------------------------------------------------
    def arrival(self, packet) -> None:
        now = self._sim._now
        micro = self._micro
        if micro and micro[0][0] <= now:
            self._flush(now)
        if not self._active:
            # Engage the private heap once no real worker is mid-packet
            # (materialised fluid steps may still be pending — their
            # kernel events flush the heap before running, so the two
            # lanes stay mutually ordered). Until then the lane runs in
            # *mixed* mode: packets are still absorbed, but every
            # deferred step is a kernel event at its exact time, which
            # interleaves correctly with in-flight worker resumes.
            dispatch = self._dispatch
            if not dispatch._items and len(dispatch._getters) == self._n_workers:
                self._active = True
        if not self._try_fluid(packet, now):
            self._spill(packet)

    def burst_arrival(self, rec, t_emit: float) -> None:
        """Fused run-item callback for burst ingress with the lane on:
        ``NicPipeline._burst_arrival`` + :meth:`arrival` +
        :meth:`_try_fluid` in one frame, with the per-packet callees
        (micro flush, buffer admission, reorder ticket, defer) inlined
        — at this event rate every call frame on the path is
        measurable. Keep in lockstep with ``_burst_arrival`` and
        :meth:`_try_fluid`; each inlined block names its source."""
        now = self._sim._now
        micro = self._micro
        if micro and micro[0][0] <= now:  # inlined _flush(now)
            while micro and micro[0][0] <= now:
                tv, _, fn, jb = _heappop(micro)
                fn(tv, jb)
        pipeline = self._pipeline
        rec.seen += 1
        if rec.seen == rec.n:
            pipeline._ingress_bursts.remove(rec)
        if t_emit > rec.cutoff:
            return  # retired by congestion feedback before its instant
        rec.done += 1
        pipeline._submitted += 1
        conn_id = rec.conn_id
        factory = rec.factory
        if factory is not None:  # inlined PacketFactory.make
            seq = factory._next_seq
            factory._next_seq = seq + 1
            factory.created += 1
            packet = Packet(
                seq, rec.size, rec.flow, t_emit, rec.app, rec.vf_index,
                -1 if conn_id is None else conn_id,
            )
        elif conn_id is None:
            packet = rec.make(
                rec.size, rec.flow, t_emit, app=rec.app, vf_index=rec.vf_index
            )
        else:
            packet = rec.make(
                rec.size, rec.flow, t_emit,
                app=rec.app, vf_index=rec.vf_index, conn_id=conn_id,
            )
        packet.nic_arrival = t_emit
        # Inlined BufferPool.try_allocate_asof(t_emit).
        buffers = self._buffers
        pending = buffers._pending
        if pending and pending[0] <= t_emit:
            free = buffers._free
            while pending and pending[0] <= t_emit:
                _heappop(pending)
                free += 1
            if free > buffers.count:
                raise BufferExhausted("buffer pool over-released")
            buffers._free = free
        free = buffers._free - 1
        if free >= 0:
            buffers._free = free
            buffers._outstanding += 1
            if free < buffers.min_free:
                buffers.min_free = free
        else:
            buffers.exhaustion_drops += 1
            pipeline._drop(packet, DropReason.NO_BUFFER, release_buffer=False)
            return
        dispatch = self._dispatch
        if (
            not self._active
            and not dispatch._items
            and len(dispatch._getters) == self._n_workers
        ):
            self._active = True
        # ---- inlined _try_fluid(packet, now) -------------------------
        if dispatch._items or len(dispatch._getters) <= self._live:
            self._spill(packet)
            return
        cache = self._labeler.cache
        if cache is None:
            self._spill(packet)
            return
        entries = cache._entries
        key = (packet.flow, packet.vf_index)
        entry = entries.get(key)
        if entry is None:
            if not (self._absorb_miss and self._try_fluid_miss(packet, now)):
                self._spill(packet)
            return
        t = now + self._c_label
        label, stored_at = entry
        timeout = cache.idle_timeout
        if timeout and (t - stored_at) > timeout:
            if not (self._absorb_miss and self._try_fluid_miss(packet, now)):
                self._spill(packet)
            return
        scheduler = self._scheduler
        hierarchy = label.hierarchy
        path = scheduler.path_cache.entries.get(hierarchy)
        if path is None:
            self._spill(packet)
            return
        meta = self._path_meta.get(hierarchy)
        if meta is None or meta[0] is not path:
            meta = self._path_meta[hierarchy] = (
                path,
                [(n, n.params.update_interval, n.params.expire_after) for n in path],
            )
        t_walk = t + self._c_emc
        for node, interval, expire in meta[1]:  # inlined is_quiescent_at
            if node.updating:
                self._spill(packet)
                return
            if t_walk - node.last_update >= interval:
                self._spill(packet)
                return
            if t_walk - node.last_seen > expire:
                self._spill(packet)
                return
        n_nodes = len(path)
        walk = self._c_walk
        c_walk = walk.get(n_nodes)
        if c_walk is None:
            costs = self._costs
            c_walk = walk[n_nodes] = self._cycles(
                n_nodes * (costs.sched_per_class + costs.update_trylock)
            )
        t2 = t_walk + c_walk
        t2 += self._c_meter
        horizon = self._sim._horizon
        if self._carry > horizon:
            horizon = self._carry  # window barrier: a pause, not an end
        if t2 > horizon:
            self._spill(packet)
            return
        lenders = None
        if self._params.borrow_enabled and label.borrow:
            lenders = self._lenders(label.borrow)
            if lenders and t2 + self._lender_bound[label.borrow] > horizon:
                self._spill(packet)
                return
        # --- absorbed: the worker's pre-yield effects -----------------
        reorder = self._reorder
        if reorder is not None:  # inlined ReorderBuffer.take_ticket
            ticket = reorder._next_ticket
            reorder._next_ticket = ticket + 1
        else:
            ticket = -1
        if timeout:
            entry[1] = t  # get()'s idle refresh, in place
        entries.move_to_end(key)
        cache.hits += 1
        # Inlined label.apply_to(packet).
        packet.hierarchy_label = label.hierarchy
        packet.borrow_label = label.borrow
        for node in path:  # inlined Scheduler.touch_path
            if t_walk > node.last_seen:
                node.last_seen = t_walk
        scheduler.stats.updates_skipped += n_nodes
        job = _FluidJob(packet, ticket, path)
        job.lenders = lenders
        self._live += 1
        self.absorbed += 1
        if self._active:  # inlined _defer, the hot branch
            _heappush(
                self._micro, (t2, next(self._queue._counter), self._meter_step, job)
            )
        else:
            self._materialized += 1
            self._queue.push(t2, self._run_mat, (self._meter_step, job))

    def trace_arrival(self, rec, i: int) -> None:
        """Fused run-item callback for multi-flow trace trains
        (``NicPipeline.submit_trace``) with the lane on — the
        :meth:`burst_arrival` twin with per-item ``flows[i]``/
        ``sizes[i]`` instead of per-train constants, plus the EMC-miss
        replay branch (``fluid_classify``): in the million-flow regime
        every flow's first packet misses, and a spill would suspend
        the lane per flow. Keep in lockstep with ``burst_arrival``;
        each inlined block names its source."""
        now = self._sim._now
        micro = self._micro
        if micro and micro[0][0] <= now:  # inlined _flush(now)
            while micro and micro[0][0] <= now:
                tv, _, fn, jb = _heappop(micro)
                fn(tv, jb)
        pipeline = self._pipeline
        rec.seen += 1
        if rec.seen == rec.n:
            pipeline._ingress_bursts.remove(rec)
        t_emit = rec.times[i]
        if t_emit > rec.cutoff:
            return  # retired before its instant (unused by trace today)
        rec.done += 1
        pipeline._submitted += 1
        flow = rec.flows[i]
        size = rec.sizes[i]
        factory = rec.factory
        if factory is not None:  # inlined PacketFactory.make
            seq = factory._next_seq
            factory._next_seq = seq + 1
            factory.created += 1
            packet = Packet(
                seq, size, flow, t_emit, rec.app, rec.vf_index, -1
            )
        else:
            packet = rec.make(
                size, flow, t_emit, app=rec.app, vf_index=rec.vf_index
            )
        packet.nic_arrival = t_emit
        # Inlined BufferPool.try_allocate_asof(t_emit).
        buffers = self._buffers
        pending = buffers._pending
        if pending and pending[0] <= t_emit:
            free = buffers._free
            while pending and pending[0] <= t_emit:
                _heappop(pending)
                free += 1
            if free > buffers.count:
                raise BufferExhausted("buffer pool over-released")
            buffers._free = free
        free = buffers._free - 1
        if free >= 0:
            buffers._free = free
            buffers._outstanding += 1
            if free < buffers.min_free:
                buffers.min_free = free
        else:
            buffers.exhaustion_drops += 1
            pipeline._drop(packet, DropReason.NO_BUFFER, release_buffer=False)
            return
        dispatch = self._dispatch
        if (
            not self._active
            and not dispatch._items
            and len(dispatch._getters) == self._n_workers
        ):
            self._active = True
        # ---- inlined _try_fluid(packet, now) -------------------------
        if dispatch._items or len(dispatch._getters) <= self._live:
            self._spill(packet)
            return
        cache = self._labeler.cache
        if cache is None:
            self._spill(packet)
            return
        entries = cache._entries
        key = (flow, rec.vf_index)
        entry = entries.get(key)
        if entry is None:
            if not (self._absorb_miss and self._try_fluid_miss(packet, now)):
                self._spill(packet)
            return
        t = now + self._c_label
        label, stored_at = entry
        timeout = cache.idle_timeout
        if timeout and (t - stored_at) > timeout:
            if not (self._absorb_miss and self._try_fluid_miss(packet, now)):
                self._spill(packet)
            return
        scheduler = self._scheduler
        hierarchy = label.hierarchy
        path = scheduler.path_cache.entries.get(hierarchy)
        if path is None:
            self._spill(packet)
            return
        meta = self._path_meta.get(hierarchy)
        if meta is None or meta[0] is not path:
            meta = self._path_meta[hierarchy] = (
                path,
                [(n, n.params.update_interval, n.params.expire_after) for n in path],
            )
        t_walk = t + self._c_emc
        for node, interval, expire in meta[1]:  # inlined is_quiescent_at
            if node.updating:
                self._spill(packet)
                return
            if t_walk - node.last_update >= interval:
                self._spill(packet)
                return
            if t_walk - node.last_seen > expire:
                self._spill(packet)
                return
        n_nodes = len(path)
        walk = self._c_walk
        c_walk = walk.get(n_nodes)
        if c_walk is None:
            costs = self._costs
            c_walk = walk[n_nodes] = self._cycles(
                n_nodes * (costs.sched_per_class + costs.update_trylock)
            )
        t2 = t_walk + c_walk
        t2 += self._c_meter
        horizon = self._sim._horizon
        if self._carry > horizon:
            horizon = self._carry  # window barrier: a pause, not an end
        if t2 > horizon:
            self._spill(packet)
            return
        lenders = None
        if self._params.borrow_enabled and label.borrow:
            lenders = self._lenders(label.borrow)
            if lenders and t2 + self._lender_bound[label.borrow] > horizon:
                self._spill(packet)
                return
        # --- absorbed: the worker's pre-yield effects -----------------
        reorder = self._reorder
        if reorder is not None:  # inlined ReorderBuffer.take_ticket
            ticket = reorder._next_ticket
            reorder._next_ticket = ticket + 1
        else:
            ticket = -1
        if timeout:
            entry[1] = t  # get()'s idle refresh, in place
        entries.move_to_end(key)
        cache.hits += 1
        # Inlined label.apply_to(packet).
        packet.hierarchy_label = label.hierarchy
        packet.borrow_label = label.borrow
        for node in path:  # inlined Scheduler.touch_path
            if t_walk > node.last_seen:
                node.last_seen = t_walk
        scheduler.stats.updates_skipped += n_nodes
        job = _FluidJob(packet, ticket, path)
        job.lenders = lenders
        self._live += 1
        self.absorbed += 1
        if self._active:  # inlined _defer, the hot branch
            _heappush(
                self._micro, (t2, next(self._queue._counter), self._meter_step, job)
            )
        else:
            self._materialized += 1
            self._queue.push(t2, self._run_mat, (self._meter_step, job))

    def _spill(self, packet) -> None:
        """An ineligible packet: leave engaged mode (materialising any
        pending steps) and take the real worker path."""
        if self._active:
            self._suspend()
        self.spills += 1
        self._route_real(packet)

    def _route_real(self, packet) -> None:
        """Hand a packet to the real worker path, mirroring what the
        per-packet fast arrival would have done at this instant *in the
        real execution* — where ``_live`` workers are busy with the
        lane's in-flight jobs."""
        dispatch = self._dispatch
        if len(dispatch._getters) > self._live:
            # A conceptual worker is free: synchronous handoff, exactly
            # like ``NicPipeline._arrive_fast``.
            if not dispatch.try_put_now(packet):
                self._pipeline._drop(packet, DropReason.QUEUE_FULL)
            return
        # Every conceptual worker is busy (parked peers stand in for
        # in-flight fluid jobs): queue exactly as try_put would with no
        # getter free; the first finishing job hands it over
        # (:meth:`_job_done`) at its completion time — the same moment
        # the real worker's ``try_get`` would have picked it up.
        if dispatch.capacity > 0 and len(dispatch._items) >= dispatch.capacity:
            self._pipeline._drop(packet, DropReason.QUEUE_FULL)
            return
        dispatch._items.append(packet)
        dispatch.total_put += 1

    # ------------------------------------------------------------------
    # eligibility + arrival-side effects
    # ------------------------------------------------------------------
    def _try_fluid(self, packet, now: float) -> bool:
        """Absorb *packet* if its whole decision is determined; returns
        False (no state touched) when it must take the real path.

        The read-only checks mirror the elided branch of
        ``handle_fast`` term for term; the mutations that follow
        replicate the worker's pre-yield effects in the worker's exact
        order (ticket, EMC hit bookkeeping, label stamp, early path
        touch, skip counting) with the same float expressions.
        """
        dispatch = self._dispatch
        if dispatch._items or len(dispatch._getters) <= self._live:
            # No conceptual worker free (parked peers stand in for the
            # lane's in-flight jobs; in mixed mode the rest are busy
            # with real packets): the real execution would queue this
            # packet behind the dispatch backlog.
            return False
        cache = self._labeler.cache
        if cache is None:
            return False
        entries = cache._entries
        key = (packet.flow, packet.vf_index)
        entry = entries.get(key)
        if entry is None:
            # EMC miss: the classifier walk is slow-path — unless the
            # lane is allowed to replay it analytically.
            return self._absorb_miss and self._try_fluid_miss(packet, now)
        # Label time: arrival + fixed overhead (handle_fast's ``t``).
        t = now + self._c_label
        label, stored_at = entry
        timeout = cache.idle_timeout
        if timeout and (t - stored_at) > timeout:
            # Idle-expired: the real get() would miss — same replay.
            return self._absorb_miss and self._try_fluid_miss(packet, now)
        scheduler = self._scheduler
        path = scheduler.path_cache.entries.get(label.hierarchy)
        if path is None:
            return False
        t_walk = t + self._c_emc
        # Inlined ClassNode.is_quiescent_at — three conditions per
        # class, checked in the fast handler's short-circuit order.
        for node in path:
            if node.updating:
                return False
            p = node.params
            if t_walk - node.last_update >= p.update_interval:
                return False
            if t_walk - node.last_seen > p.expire_after:
                return False
        n_nodes = len(path)
        walk = self._c_walk
        c_walk = walk.get(n_nodes)
        if c_walk is None:
            costs = self._costs
            c_walk = walk[n_nodes] = self._cycles(
                n_nodes * (costs.sched_per_class + costs.update_trylock)
            )
        t2 = t_walk + c_walk
        t2 += self._c_meter
        horizon = self._sim._horizon
        if self._carry > horizon:
            horizon = self._carry  # window barrier: a pause, not an end
        if t2 > horizon:
            return False  # handle_fast would keep the slow wakeups
        lenders = None
        if self._params.borrow_enabled and label.borrow:
            lenders = self._lenders(label.borrow)
            if lenders and t2 + self._lender_bound[label.borrow] > horizon:
                # Worst case every lender wins its update trylock. The
                # precomputed bound over-approximates the real chain's
                # rounded step-by-step adds (see _lenders), so it can
                # only spill a borderline packet to the real path —
                # behavior-neutral by construction — never absorb one
                # whose chain would outrun the horizon.
                return False
        # --- absorbed: the worker's pre-yield effects -----------------
        reorder = self._reorder
        ticket = reorder.take_ticket() if reorder is not None else -1
        if timeout:
            entry[1] = t  # get()'s idle refresh, in place
        entries.move_to_end(key)
        cache.hits += 1
        label.apply_to(packet)
        for node in path:  # inlined Scheduler.touch_path
            if t_walk > node.last_seen:
                node.last_seen = t_walk
        scheduler.stats.updates_skipped += n_nodes
        job = _FluidJob(packet, ticket, path)
        job.lenders = lenders
        self._live += 1
        self.absorbed += 1
        if self._active:  # inlined _defer, the hot branch
            heapq.heappush(
                self._micro, (t2, next(self._queue._counter), self._meter_step, job)
            )
        else:
            self._materialized += 1
            self._queue.push(t2, self._run_mat, (self._meter_step, job))
        return True

    def _try_fluid_miss(self, packet, now: float) -> bool:
        """Absorb an EMC-miss packet by replaying the classification
        walk analytically (``config.fluid_classify``).

        The pre-checks are side-effect-free — the rule walk below
        deliberately bypasses the classifier's ``lookups``/``misses``
        counters, which the *committed* walk (``labeler.label``)
        increments exactly once, as the real worker would. On commit,
        every mutation the trylock fast handler performs on a miss
        (cache get-miss bookkeeping, rule walk, cache insert with its
        eviction/expiry, label stamp, path memoisation, early touch,
        skip counts) runs at the handler's exact virtual timestamps, so
        outcomes are bit-identical to the per-packet path; only the
        kernel-event count differs. Caller guarantees the dispatch gate
        and a non-None cache.
        """
        labeler = self._labeler
        # Pure pre-walk: first matching rule, as Classifier.classify.
        leaf_id = None
        for rule in labeler.classifier._rules:
            if rule.match.matches(packet):
                leaf_id = rule.flowid
                break
        if leaf_id is None:
            leaf_id = labeler.default_leaf
            if leaf_id is None:
                return False  # unclassified drop: slow path handles it
        label = labeler._labels.get(leaf_id)
        if label is None:
            return False  # UnknownClassError: let the real path raise
        t = now + self._c_label
        c_miss = self._c_miss
        if c_miss is None:
            costs = self._costs
            c_miss = self._c_miss = self._cycles(
                costs.emc_hit
                + costs.classify_per_rule * max(1, len(labeler.classifier))
            )
        t_walk = t + c_miss
        scheduler = self._scheduler
        hierarchy = label.hierarchy
        path = scheduler.path_cache.entries.get(hierarchy)
        resolved = path is not None
        if path is None:
            # Pure resolve for the quiescence probe; the commit below
            # memoises through the real PathCache (counter included).
            tree = scheduler.tree
            path = [tree.node(classid) for classid in hierarchy]
        for node in path:  # inlined is_quiescent_at, as the hit path
            if node.updating:
                return False
            p = node.params
            if t_walk - node.last_update >= p.update_interval:
                return False
            if t_walk - node.last_seen > p.expire_after:
                return False
        n_nodes = len(path)
        walk = self._c_walk
        c_walk = walk.get(n_nodes)
        if c_walk is None:
            costs = self._costs
            c_walk = walk[n_nodes] = self._cycles(
                n_nodes * (costs.sched_per_class + costs.update_trylock)
            )
        t2 = t_walk + c_walk
        t2 += self._c_meter
        horizon = self._sim._horizon
        if self._carry > horizon:
            horizon = self._carry
        if t2 > horizon:
            return False  # handle_fast would keep the slow wakeups
        lenders = None
        if self._params.borrow_enabled and label.borrow:
            lenders = self._lenders(label.borrow)
            if lenders and t2 + self._lender_bound[label.borrow] > horizon:
                return False
        # --- absorbed: the worker's pre-yield effects -----------------
        reorder = self._reorder
        if reorder is not None:
            ticket = reorder._next_ticket
            reorder._next_ticket = ticket + 1
        else:
            ticket = -1
        # The real, counted walk at the label timestamp: get-miss (or
        # expiry), classify, cache.put with its eviction/expiry
        # decision, label stamp — LabelingFunction.label is the exact
        # code the fast handler runs.
        labeler.label(packet, t)
        if resolved:
            shared = path
        else:
            shared = scheduler.path_cache.resolve(scheduler.tree, hierarchy)
        for node in shared:  # inlined Scheduler.touch_path
            if t_walk > node.last_seen:
                node.last_seen = t_walk
        scheduler.stats.updates_skipped += n_nodes
        job = _FluidJob(packet, ticket, shared)
        job.lenders = lenders
        self._live += 1
        self.absorbed += 1
        self.miss_absorbed += 1
        if self._active:
            _heappush(
                self._micro, (t2, next(self._queue._counter), self._meter_step, job)
            )
        else:
            self._materialized += 1
            self._queue.push(t2, self._run_mat, (self._meter_step, job))
        return True

    def _lenders(self, borrow) -> list:
        """The flattened lender-leaf walk of a borrow label, memoised
        (the tree never changes shape after construction), along with
        an upper bound on the walk's worst-case duration: the real
        chain adds ``cycles(bq+update)`` once per lender with a float
        rounding per add, so ``L*step`` scaled by a generous relative
        margin (adds lose at most one ulp each) always dominates it."""
        lenders = self._lender_cache.get(borrow)
        if lenders is None:
            tree = self._scheduler.tree
            lenders = []
            for lender_id in borrow:
                lenders.extend(tree.node(lender_id).leaf_descendants())
            self._lender_cache[borrow] = lenders
            self._lender_bound[borrow] = (
                len(lenders) * self._c_borrow_won * (1.0 + 1e-9)
            )
        return lenders

    # ------------------------------------------------------------------
    # the deferred micro-queue
    # ------------------------------------------------------------------
    def _defer(self, t: float, fn, job) -> None:
        # Seqs come from the kernel counter at the same moment the real
        # path would create its resume event, so (time, seq) ordering —
        # including exact ties — matches the real interleaving.
        if self._active:
            heapq.heappush(self._micro, (t, next(self._queue._counter), fn, job))
        else:
            self._materialized += 1
            self._queue.push(t, self._run_mat, (fn, job))

    def _run_mat(self, fn, job) -> None:
        """A materialised micro-step executing as a kernel event (the
        wall clock IS the step's virtual time here). If the lane has
        engaged since this step was pushed, matured private steps are
        flushed first so the two lanes stay in (time, seq) order."""
        self._materialized -= 1
        now = self._sim._now
        micro = self._micro
        if micro and micro[0][0] <= now:
            self._flush(now)
        fn(now, job)

    def _flush(self, limit: float) -> None:
        """Apply every deferred step with virtual time <= *limit*, in
        (time, seq) order. Handlers may defer follow-up steps; the heap
        keeps the combined order."""
        micro = self._micro
        heappop = heapq.heappop
        while micro and micro[0][0] <= limit:
            tv, _, fn, job = heappop(micro)
            fn(tv, job)

    def _suspend(self) -> None:
        """Leave engaged mode: pending steps become kernel events at
        their virtual times (all strictly in the future — matured steps
        were flushed first), pushed in ascending order so their
        relative order is preserved."""
        self._active = False
        micro = self._micro
        if not micro:
            return
        self.suspends += 1
        push = self._queue.push
        run_mat = self._run_mat
        heappop = heapq.heappop
        n = 0
        while micro:
            tv, _, fn, job = heappop(micro)
            push(tv, run_mat, (fn, job))
            n += 1
        self._materialized += n

    def _pending_time(self) -> Optional[float]:
        micro = self._micro
        if not micro:
            return None
        return max(item[0] for item in micro)

    def _end_flush(self) -> None:
        if self._micro:
            self._flush(self._sim._now)

    # ------------------------------------------------------------------
    # micro-step handlers (``tv`` is the step's virtual wall time)
    # ------------------------------------------------------------------
    def _meter_step(self, tv: float, job: _FluidJob) -> None:
        """The merged wakeup at ``t2``: leaf meter, then verdict or the
        borrow walk (handle_fast's post-yield body). The leaf bucket's
        refill + meter are inlined with TokenBucket's exact float
        expressions."""
        leaf = job.path[-1]
        bucket = leaf.bucket
        # Inlined params.packet_bits — same expression, same float.
        size_bits = (job.packet.size + self._overhead_bytes) * 8.0
        job.size_bits = size_bits
        tokens = bucket.tokens
        if self._continuous_refill:  # inlined bucket.refill(tv)
            dt = tv - bucket.last_refill
            if dt > 0:
                tokens = min(bucket.capacity, tokens + bucket.rate_bps * dt)
                bucket.tokens = tokens
                bucket.last_refill = tv
        if tokens >= size_bits:  # inlined bucket.meter(size_bits)
            bucket.tokens = tokens - size_bits
            bucket.greens += 1
            self._finish_forward(tv, job, None)
            return
        bucket.reds += 1
        if job.lenders:
            self._borrow_try(tv, job)
            return
        self._finish_drop(tv, job)

    def _borrow_try(self, tv: float, job: _FluidJob) -> None:
        """Probe the current lender's update trylock at ``tv`` (the
        flag-hold window starts here, exactly as in the real walk) and
        defer the post-yield settle. The trylock gate and the defer are
        inlined (ClassNode.try_begin_update / :meth:`_defer`) — this
        runs once per red packet per lender probed."""
        lender = job.lenders[job.idx]
        if lender.updating or tv - lender.last_update < lender.params.update_interval:
            job.won = False
            t = tv + self._c_borrow_lost
        else:
            lender.updating = True
            job.won = True
            t = tv + self._c_borrow_won
        if self._active:
            _heappush(
                self._micro, (t, next(self._queue._counter), self._borrow_settle, job)
            )
        else:
            self._materialized += 1
            self._queue.push(t, self._run_mat, (self._borrow_settle, job))

    def _borrow_settle(self, tv: float, job: _FluidJob) -> None:
        """After the borrow yield: run the won update, query the shadow
        bucket (meter inlined), and either finish or move on."""
        leaf_lender = job.lenders[job.idx]
        size_bits = job.size_bits
        if job.won:
            leaf_lender.perform_update(tv)
            leaf_lender.end_update()
            self._scheduler.stats.updates_run += 1
        shadow = leaf_lender.shadow
        tokens = shadow.tokens
        if tokens >= size_bits:  # inlined shadow.meter(size_bits)
            shadow.tokens = tokens - size_bits
            shadow.greens += 1
            leaf_lender.lent_bits += size_bits
            # scheduler.tracer is None whenever the fast path is on.
            self._finish_forward(tv, job, leaf_lender)
            return
        shadow.reds += 1
        job.idx += 1
        if job.idx < len(job.lenders):
            self._borrow_try(tv, job)
            return
        self._finish_drop(tv, job)

    # ------------------------------------------------------------------
    # completion (the worker's post-handle epilogue)
    # ------------------------------------------------------------------
    def _finish_forward(self, tv: float, job: _FluidJob, borrowed_from) -> None:
        packet = job.packet
        path = job.path
        size_bits = job.size_bits
        # Inlined Scheduler.commit(packet, path, borrowed_from,
        # size_bits=...): Γ observed here (``gamma_mode="forwarded"``),
        # interior buckets drained with consume()'s exact clamp.
        for node in path:
            node.gamma.observe(size_bits)
            node.forwarded_packets += 1
            node.forwarded_bits += size_bits
            if node.children:
                bucket = node.bucket
                rest = bucket.tokens - size_bits
                bucket.tokens = rest if rest > 0.0 else 0.0
        stats = self._scheduler.stats
        stats.forwarded += 1
        if borrowed_from is None:
            stats.forwarded_on_own_tokens += 1
        else:
            stats.forwarded_on_borrowed_tokens += 1
            leaf = path[-1]
            leaf.borrowed_bits += size_bits
            bkey = (leaf.classid, borrowed_from.classid)
            stats.borrow_matrix[bkey] = stats.borrow_matrix.get(bkey, 0) + 1
        stats.decisions += 1
        pipeline = self._pipeline
        reorder = self._reorder
        if reorder is None or (
            job.ticket == reorder._next_release and not reorder._pending
        ):
            # Head-of-line with nothing parked: complete() would only
            # bump the cursor and emit. The whole emission chain —
            # _emit_to_tx_fast -> TrafficManager.offer -> Link.send ->
            # lazy sink delivery + lazy buffer return — is inlined at
            # the job's virtual time ``tv`` (no clock overrides
            # needed); the construction guard pins exactly this chain.
            if reorder is not None:
                reorder._next_release = job.ticket + 1
            ring = self._tx_ring
            starts = ring._starts
            while starts and starts[0] <= tv:  # TxRing.virtual_accept
                starts.popleft()
            buffers = self._buffers
            if len(starts) >= ring.depth:
                ring.tail_drops += 1
                # Inlined NicPipeline._drop(QUEUE_FULL): no tracer,
                # no counters, no on_drop under the fluid guard.
                packet.dropped = True
                packet.drop_reason = DropReason.QUEUE_FULL
                pipeline.dropped += 1
                pipeline.drops_by_reason[DropReason.QUEUE_FULL] += 1
                buffers._outstanding -= 1
                _heappush(buffers._pending, tv + buffers.recycle_delay)
            else:
                tm = self._tm
                tm._frames_out += 1
                link = self._link
                prior = link._busy_until  # Link.send(packet, now=tv)
                start = prior if prior > tv else tv
                finish = start + (packet.size + ETH_OVERHEAD) * 8.0 / self._rate_bps
                link._busy_until = finish
                packet.tx_start = start
                link.frames_sent += 1
                link.bytes_sent += packet.size
                sink = self._sink
                if self._boundary:
                    # Cross-shard wire: inlined BoundaryOutbox
                    # .receive_later — one WireRecord at the virtual
                    # arrival instant, identical to what the real lazy
                    # route would have recorded.
                    sink.records.append((
                        finish + self._prop_delay, packet.seq, packet.size,
                        packet.created_at, packet.app, packet.vf_index,
                    ))
                elif sink._drain_hook_registered:
                    sink._pending.append((finish + self._prop_delay, packet))
                else:  # first delivery registers the drain hook
                    sink.receive_later(finish + self._prop_delay, packet)
                if prior > tv:  # TxRing.virtual_push(prior)
                    starts.append(prior)
                    occ = len(starts)
                    if occ > ring.max_occupancy:
                        ring.max_occupancy = occ
                # _on_sent_at: lazy buffer return at serialisation end.
                buffers._outstanding -= 1
                _heappush(buffers._pending, finish + buffers.recycle_delay)
                pipeline.forwarded += 1
        else:
            tm = self._tm
            tm._now_override = tv
            pipeline._drop_now_override = tv
            try:
                reorder.complete(job.ticket, packet)
            finally:
                tm._now_override = None
                pipeline._drop_now_override = None
        # Inlined _job_done(job).
        self._live -= 1
        dispatch = self._dispatch
        if dispatch._items and dispatch._getters:
            self._job_handoff(dispatch)

    def _finish_drop(self, tv: float, job: _FluidJob) -> None:
        stats = self._scheduler.stats
        stats.dropped += 1
        stats.decisions += 1
        packet = job.packet
        packet.dropped = True  # inlined mark_dropped(SCHED_RED)
        packet.drop_reason = DropReason.SCHED_RED
        pipeline = self._pipeline
        reorder = self._reorder
        if reorder is None or (
            job.ticket == reorder._next_release and not reorder._pending
        ):
            # Head-of-line drop with nothing parked: no emission can
            # result. Inlined NicPipeline._drop (no tracer, no drop
            # counters, no on_drop under the fluid construction guard):
            # count the discard and return the buffer lazily at the
            # drop's virtual time.
            if reorder is not None:
                reorder._next_release = job.ticket + 1
            pipeline.dropped += 1
            pipeline.drops_by_reason[DropReason.SCHED_RED] += 1
            buffers = self._buffers
            buffers._outstanding -= 1
            _heappush(buffers._pending, tv + buffers.recycle_delay)
            # Inlined _job_done(job).
            self._live -= 1
            dispatch = self._dispatch
            if dispatch._items and dispatch._getters:
                self._job_handoff(dispatch)
            return
        tm = self._tm
        tm._now_override = tv
        pipeline._drop_now_override = tv
        try:
            reorder.complete(job.ticket, None)
            pipeline._drop(packet, DropReason.SCHED_RED, already_marked=True)
        finally:
            tm._now_override = None
            pipeline._drop_now_override = None
        self._job_done(job)

    def _job_done(self, job: _FluidJob) -> None:
        self._live -= 1
        dispatch = self._dispatch
        if dispatch._items and dispatch._getters:
            self._job_handoff(dispatch)

    def _job_handoff(self, dispatch) -> None:
        """Hand a queued packet to a parked peer when a job completes.

        Only reachable in materialised mode (engaged mode keeps the
        dispatch queue empty), so the wall clock equals the finished
        job's completion time: the handoff runs exactly when the freed
        worker's ``try_get`` would."""
        item = dispatch._items.popleft()
        dispatch.total_got += 1
        dispatch._admit_waiting_putter()
        getter = dispatch._getters.popleft()
        getter.succeed_now(item)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Fluid jobs between absorption and completion."""
        return self._live

    @property
    def engaged(self) -> bool:
        """True while the lane is absorbing eligible packets."""
        return self._active
