"""The NP-based SmartNIC model (paper §III-B, Fig. 4).

A discrete-event model of a Netronome-style network processor:
micro-engine worker pool with run-to-completion packet processing,
per-packet cycle budgets, a shared-memory hierarchy with access
latencies, atomic engines, SR-IOV receive queues, a bounded packet
buffer pool with a manager-core recycler, a reorder system, a shared
Tx ring feeding the traffic manager's FIFO queues, and a MAC that
serialises frames onto the wire.

FlowValve plugs into each worker's processing routine as a
:class:`~repro.nic.apps.NicApp`; the same pipeline runs a pass-through
app to measure the NIC's raw forwarding behaviour (the paper's
"disable FlowValve to simply forward packets" datum).
"""

from .config import CycleCosts, NicConfig
from .memory import MemoryHierarchy, MemoryRegion
from .rings import RxQueue, TxRing
from .reorder import ReorderBuffer
from .buffer_pool import BufferPool
from .traffic_manager import TrafficManager
from .apps import FlowValveNicApp, ForwardAllApp, NicApp
from .pipeline import NicPipeline

__all__ = [
    "CycleCosts",
    "NicConfig",
    "MemoryHierarchy",
    "MemoryRegion",
    "RxQueue",
    "TxRing",
    "ReorderBuffer",
    "BufferPool",
    "TrafficManager",
    "NicApp",
    "ForwardAllApp",
    "FlowValveNicApp",
    "NicPipeline",
]
