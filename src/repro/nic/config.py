"""SmartNIC configuration: geometry and per-operation cycle budgets.

Defaults model a Netronome Agilio CX 40GbE (NFP-4000): 50 effective
worker micro-engines at 1.2 GHz (the paper's "many processing cores,
e.g. ≥ 50"), four threads per ME for latency hiding, and a 40 Gbit
wire. Cycle budgets are derived from the memory hierarchy plus
instruction-work constants and then *calibrated* so the assembled
pipeline's 64 B forwarding capacity lands near the paper's measured
19.69 Mpps (Fig. 13) — see EXPERIMENTS.md for the calibration note.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from .memory import MemoryHierarchy

__all__ = ["CycleCosts", "NicConfig"]


@dataclass(frozen=True)
class CycleCosts:
    """Per-operation budgets in micro-engine cycles.

    ``fixed_overhead`` covers the work every packet pays regardless of
    the app: MAC/DMA handoff, buffer metadata, header parse, reorder
    bookkeeping and Tx descriptor writes. The remaining entries are the
    app-specific steps of the labeling and scheduling functions.
    """

    #: Per-packet pipeline overhead (parse, buffer mgmt, reorder, tx).
    #: Calibrated so the assembled FlowValve pipeline's 64 B capacity
    #: lands at the paper's measured 19.69 Mpps (Fig. 13): the full
    #: budget works out to ≈ 3050 cycles/packet on a 2-level tree.
    fixed_overhead: int = 2100
    #: Exact-match flow cache hit (hash + one CLS read).
    emc_hit: int = 180
    #: Rule-walk cost per filter rule on an EMC miss.
    classify_per_rule: int = 220
    #: Per-class work in the scheduling loop (label decode, counter add).
    sched_per_class: int = 260
    #: The update subprocedure body (Γ roll, θ recompute, refills).
    update_body: int = 650
    #: The atomic try-lock probe when the update flag is already held.
    update_trylock: int = 60
    #: The leaf meter instruction (atomic test-and-subtract).
    meter: int = 120
    #: One shadow-bucket borrow query (update probe + atomic meter).
    borrow_query: int = 200
    #: One Tx-ring insert/remove (atomic index bump + descriptor slot),
    #: same scale as the try-lock probe. Used by the crossbar cost
    #: model (DESIGN.md §10); the assembled pipeline folds ring work
    #: into ``fixed_overhead``.
    ring_op: int = 60

    def validate(self) -> None:
        """All budgets must be non-negative."""
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"cycle cost {name} must be >= 0, got {value}")


@dataclass(frozen=True)
class NicConfig:
    """Geometry and capacities of the modelled SmartNIC."""

    #: Micro-engine clock.
    freq_hz: float = 1.2e9
    #: Effective worker micro-engines pulling packets.
    n_workers: int = 50
    #: Threads per ME (memory latency hiding; folded into budgets).
    threads_per_me: int = 4
    #: Wire rate of the egress port.
    line_rate_bps: float = 40e9
    #: PCIe DMA + load-balancer latency from host ring to a worker.
    rx_dma_latency: float = 8e-6
    #: Fixed egress-path latency (Tx DMA, traffic manager, MAC) beyond
    #: serialisation — the "other necessary processing" behind the
    #: paper's 161 µs forwarding floor at 40 Gbit (§V-B).
    tx_fixed_latency: float = 4e-6
    #: Dispatch queue depth in packets (load-balancer backlog).
    dispatch_depth: int = 512
    #: Shared Tx ring depth in packets.
    tx_ring_depth: int = 1024
    #: Packet buffers in the MU buffer lists.
    buffer_count: int = 4096
    #: Delay for the manager core to re-link a freed buffer.
    buffer_recycle_delay: float = 2e-6
    #: Whether the reorder system is enabled (it is on real NFPs).
    reorder_enabled: bool = True
    #: Update-lock discipline: "trylock" (FlowValve's design),
    #: "per_class_block" (Fig. 7c), "global_block" (naive offload),
    #: "sequential" (Fig. 7b: one worker does all scheduling).
    lock_mode: str = "trylock"
    #: Allow the batched egress + single-wakeup packet fast path
    #: (DESIGN.md §7). Semantically identical to the multi-yield slow
    #: path — seeded runs are bit-identical either way — and engaged
    #: only while tracing and metrics are off; set False to force the
    #: slow path (equivalence tests, debugging).
    fast_path: bool = True
    #: Max emission instants a burst-capable sender may precompute and
    #: hand to ``NicPipeline.submit_burst`` as one run-lane train
    #: (DESIGN.md §7). Like ``fast_path`` it is auto-disabled while
    #: tracing or metrics are on (and whenever ``fast_path`` is off);
    #: 0 forces per-packet ingress. Observable behaviour is identical
    #: either way.
    ingress_burst: int = 64
    #: Allow the fluid fast-forward lane (DESIGN.md §7): packets of
    #: quiescent flows — cache-hit label, no update due on the path,
    #: no competing update in flight — are carried to their scheduling
    #: decision analytically through a deferred micro-queue instead of
    #: a worker wakeup chain, materialising zero kernel events until a
    #: boundary (update epoch, cache churn, run horizon) trips the
    #: detector. Bit-identical to the per-packet path; auto-disabled
    #: with tracing/metrics, the slow path, drop callbacks, or an
    #: eventful sink. Set False to force per-packet processing.
    fluid: bool = True
    #: Allow the fluid lane to absorb EMC-*miss* packets too, by
    #: replaying the classification walk (rule match, cache insert,
    #: miss-path cycle cost) analytically at its virtual time — the
    #: same states and timestamps the trylock fast handler produces,
    #: so outcomes stay bit-identical to the per-packet path. Off by
    #: default: absorption decisions change which packets ride the
    #: lane, which changes *kernel event counts* (never results), and
    #: the recorded hot-path/fabric budgets pin the default lane.
    #: Million-flow trace runs turn this on — every flow's first
    #: packet is an EMC miss, and a spill per flow suspends the lane
    #: (DESIGN.md §12).
    fluid_classify: bool = False
    #: Per-operation cycle budgets.
    costs: CycleCosts = field(default_factory=CycleCosts)
    #: Memory hierarchy (documentation + latency-hiding math).
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy, repr=False, compare=False)

    _LOCK_MODES = ("trylock", "per_class_block", "global_block", "sequential")

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ConfigError("freq_hz must be positive")
        if self.n_workers <= 0:
            raise ConfigError("n_workers must be positive")
        if self.line_rate_bps <= 0:
            raise ConfigError("line_rate_bps must be positive")
        if self.ingress_burst < 0:
            raise ConfigError(f"ingress_burst must be >= 0, got {self.ingress_burst}")
        if self.lock_mode not in self._LOCK_MODES:
            raise ConfigError(
                f"lock_mode must be one of {self._LOCK_MODES}, got {self.lock_mode!r}"
            )
        self.costs.validate()

    # ------------------------------------------------------------------
    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the ME clock."""
        return cycles / self.freq_hz

    def worker_capacity_pps(self, cycles_per_packet: float) -> float:
        """Aggregate forwarding capacity for a given per-packet budget."""
        if cycles_per_packet <= 0:
            return float("inf")
        return self.n_workers * self.freq_hz / cycles_per_packet

    def scaled(self, rate_scale: float) -> "NicConfig":
        """A config for a rate-scaled experiment: the wire slows by
        *rate_scale* and every latency/compute term stretches by the
        same factor, keeping all dimensionless ratios identical."""
        if rate_scale <= 0:
            raise ConfigError("rate_scale must be positive")
        return replace(
            self,
            freq_hz=self.freq_hz / rate_scale,
            line_rate_bps=self.line_rate_bps / rate_scale,
            rx_dma_latency=self.rx_dma_latency * rate_scale,
            tx_fixed_latency=self.tx_fixed_latency * rate_scale,
            buffer_recycle_delay=self.buffer_recycle_delay * rate_scale,
            # Queue depths scale with the packet rate so the *time* a
            # full queue represents is preserved (a 1024-deep ring at
            # 1/1000 the packet rate would otherwise hold 1000x the
            # buffering delay and bufferbloat every TCP RTT estimate).
            dispatch_depth=max(16, int(self.dispatch_depth / rate_scale)),
            tx_ring_depth=max(16, int(self.tx_ring_depth / rate_scale)),
            buffer_count=max(64, int(self.buffer_count / rate_scale)),
        )
