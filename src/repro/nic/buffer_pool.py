"""The packet buffer pool and its manager core.

Paper §III-B: "a manager core (other than worker cores) collects freed
buffers and re-links them to the buffer lists for new incoming
packets." Arrivals that find the free list empty are dropped in
hardware. The model keeps a free-buffer count; frees return to the
list only after the manager core's recycle delay, so a burst can
transiently exhaust the pool even when long-run demand fits.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..errors import BufferExhausted, CapacityError

__all__ = ["BufferPool"]


class BufferPool:
    """Counted packet buffers with delayed recycling.

    Two release routes coexist:

    * :meth:`release` — schedules a ``_relink`` simulator event after
      the recycle delay (one kernel event per free). The observable
      route: the free count advances with the clock even when nobody
      looks.
    * :meth:`release_at` — the *lazy* fast-path route: the relink time
      goes on a heap and matured entries are folded into the free
      count the next time anything observes it (``try_allocate`` or
      the ``free`` property). ``_free`` is only ever read at those
      observation points, so deferring the bookkeeping to them is
      exactly equivalent — same allocation outcomes, same ``min_free``
      (the free count only falls at allocations, so sampling the
      low-water mark there loses nothing) — with zero kernel events.
    """

    def __init__(self, sim, count: int, recycle_delay: float = 2e-6):
        if count <= 0:
            raise CapacityError(f"buffer count must be positive, got {count}")
        self.sim = sim
        self.count = count
        self.recycle_delay = recycle_delay
        self._free = count
        self._outstanding = 0
        #: Heap of pending lazy relink times (release_at route).
        self._pending: list = []
        #: Arrivals dropped for lack of a free buffer.
        self.exhaustion_drops = 0
        #: Low-water mark of the free list (diagnostic).
        self.min_free = count

    @property
    def free(self) -> int:
        """Buffers currently on the free list."""
        if self._pending:
            self._drain_pending(self.sim._now)
        return self._free

    def _drain_pending(self, now: float) -> None:
        pending = self._pending
        free = self._free
        while pending and pending[0] <= now:
            heappop(pending)
            free += 1
        if free > self.count:
            raise BufferExhausted("buffer pool over-released")
        self._free = free

    @property
    def outstanding(self) -> int:
        """Buffers held by in-flight packets (excludes recycling)."""
        return self._outstanding

    def try_allocate(self) -> bool:
        """Take one buffer; False (counted) when the list is empty."""
        if self._pending:
            self._drain_pending(self.sim._now)
        if self._free == 0:
            self.exhaustion_drops += 1
            return False
        self._free -= 1
        self._outstanding += 1
        if self._free < self.min_free:
            self.min_free = self._free
        return True

    def try_allocate_asof(self, time: float) -> bool:
        """:meth:`try_allocate` as it would have decided at *time*.

        The burst-ingress route runs admission inside a DMA-completion
        callback (wall clock = emission + DMA latency), but the
        per-packet reference decides at the emission instant. Draining
        only relinks matured by *time* reproduces that decision
        exactly: any ``release_at`` recorded after *time* has a finish
        time past *time*, so its relink (finish + recycle delay)
        could not have matured by *time* either way.
        """
        if self._pending:
            self._drain_pending(time)
        if self._free == 0:
            self.exhaustion_drops += 1
            return False
        self._free -= 1
        self._outstanding += 1
        if self._free < self.min_free:
            self.min_free = self._free
        return True

    def release(self) -> None:
        """Free one buffer; it re-enters the list after the manager
        core's recycle delay."""
        if self._outstanding == 0:
            raise BufferExhausted("release without a matching allocation")
        self._outstanding -= 1
        if self.recycle_delay > 0:
            self.sim.schedule(self.recycle_delay, self._relink)
        else:
            self._relink()

    def release_at(self, time: float) -> None:
        """Free one buffer effective at *time* + the recycle delay,
        without a simulator event (see the class docstring)."""
        if self._outstanding == 0:
            raise BufferExhausted("release without a matching allocation")
        self._outstanding -= 1
        heappush(self._pending, time + self.recycle_delay)

    def _relink(self) -> None:
        self._free += 1
        if self._free > self.count:
            raise BufferExhausted("buffer pool over-released")
