"""The packet buffer pool and its manager core.

Paper §III-B: "a manager core (other than worker cores) collects freed
buffers and re-links them to the buffer lists for new incoming
packets." Arrivals that find the free list empty are dropped in
hardware. The model keeps a free-buffer count; frees return to the
list only after the manager core's recycle delay, so a burst can
transiently exhaust the pool even when long-run demand fits.
"""

from __future__ import annotations

from ..errors import BufferExhausted, CapacityError

__all__ = ["BufferPool"]


class BufferPool:
    """Counted packet buffers with delayed recycling."""

    def __init__(self, sim, count: int, recycle_delay: float = 2e-6):
        if count <= 0:
            raise CapacityError(f"buffer count must be positive, got {count}")
        self.sim = sim
        self.count = count
        self.recycle_delay = recycle_delay
        self._free = count
        self._outstanding = 0
        #: Arrivals dropped for lack of a free buffer.
        self.exhaustion_drops = 0
        #: Low-water mark of the free list (diagnostic).
        self.min_free = count

    @property
    def free(self) -> int:
        """Buffers currently on the free list."""
        return self._free

    @property
    def outstanding(self) -> int:
        """Buffers held by in-flight packets (excludes recycling)."""
        return self._outstanding

    def try_allocate(self) -> bool:
        """Take one buffer; False (counted) when the list is empty."""
        if self._free == 0:
            self.exhaustion_drops += 1
            return False
        self._free -= 1
        self._outstanding += 1
        if self._free < self.min_free:
            self.min_free = self._free
        return True

    def release(self) -> None:
        """Free one buffer; it re-enters the list after the manager
        core's recycle delay."""
        if self._outstanding == 0:
            raise BufferExhausted("release without a matching allocation")
        self._outstanding -= 1
        if self.recycle_delay > 0:
            self.sim.schedule(self.recycle_delay, self._relink)
        else:
            self._relink()

    def _relink(self) -> None:
        self._free += 1
        if self._free > self.count:
            raise BufferExhausted("buffer pool over-released")
