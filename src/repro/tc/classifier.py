"""Packet classification against filter rules.

Implements the *labeling function*'s matching step (paper Fig. 5): an
egress packet is compared against the installed filter rules in
priority order; the first match yields the leaf class id. The
exact-match flow cache that accelerates this on the Netronome lives in
:mod:`repro.core.flow_cache` — this module is the slow path it caches.

Supported match fields (a practical subset of ``tc`` u32/flower):

========  =================================================
field      meaning
========  =================================================
src        source IP, exact string match
dst        destination IP, exact string match
sport      source port (int, or ``lo-hi`` range)
dport      destination port (int, or ``lo-hi`` range)
proto      ``tcp`` / ``udp`` / protocol number
vf         SR-IOV virtual function index the packet entered on
app        application tag (testbed convenience, like an fwmark)
========  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ValidationError
from ..net.packet import Packet
from .ast import FilterSpec

__all__ = ["MatchSpec", "FilterRule", "Classifier"]

_PROTO_NAMES = {"tcp": 6, "udp": 17, "icmp": 1}


def _parse_port(value: str) -> Tuple[int, int]:
    """Parse ``"80"`` or ``"8000-8999"`` into an inclusive range."""
    if "-" in value:
        lo_text, _, hi_text = value.partition("-")
        lo, hi = int(lo_text), int(hi_text)
    else:
        lo = hi = int(value)
    if lo < 0 or hi > 65535 or lo > hi:
        raise ValidationError(f"bad port match {value!r}")
    return lo, hi


@dataclass(frozen=True)
class MatchSpec:
    """Compiled match fields; ``None`` means wildcard."""

    src: Optional[str] = None
    dst: Optional[str] = None
    sport: Optional[Tuple[int, int]] = None
    dport: Optional[Tuple[int, int]] = None
    proto: Optional[int] = None
    vf: Optional[int] = None
    app: Optional[str] = None

    @classmethod
    def compile(cls, fields: Dict[str, str]) -> "MatchSpec":
        """Compile a raw field dict from a :class:`FilterSpec`."""
        known = {"src", "dst", "sport", "dport", "proto", "vf", "app"}
        unknown = set(fields) - known
        if unknown:
            raise ValidationError(f"unknown match field(s): {sorted(unknown)}")
        proto: Optional[int] = None
        if "proto" in fields:
            raw = fields["proto"].lower()
            proto = _PROTO_NAMES.get(raw)
            if proto is None:
                try:
                    proto = int(raw)
                except ValueError:
                    raise ValidationError(f"bad proto match {raw!r}") from None
        return cls(
            src=fields.get("src"),
            dst=fields.get("dst"),
            sport=_parse_port(fields["sport"]) if "sport" in fields else None,
            dport=_parse_port(fields["dport"]) if "dport" in fields else None,
            proto=proto,
            vf=int(fields["vf"]) if "vf" in fields else None,
            app=fields.get("app"),
        )

    def matches(self, packet: Packet) -> bool:
        """True if every non-wildcard field matches *packet*."""
        flow = packet.flow
        if self.src is not None and flow.src_ip != self.src:
            return False
        if self.dst is not None and flow.dst_ip != self.dst:
            return False
        if self.sport is not None and not (self.sport[0] <= flow.src_port <= self.sport[1]):
            return False
        if self.dport is not None and not (self.dport[0] <= flow.dst_port <= self.dport[1]):
            return False
        if self.proto is not None and flow.proto != self.proto:
            return False
        if self.vf is not None and packet.vf_index != self.vf:
            return False
        if self.app is not None and packet.app != self.app:
            return False
        return True


@dataclass(frozen=True)
class FilterRule:
    """A compiled filter: match spec + target leaf class + priority."""

    match: MatchSpec
    flowid: str
    prio: int


class Classifier:
    """Ordered rule list with first-match-wins semantics.

    Rules are sorted by ``(prio, insertion order)`` — identical to the
    kernel's filter chain walk. :meth:`classify` returns the leaf class
    id or ``None`` when nothing matched (the caller applies the qdisc's
    ``default`` class or drops).
    """

    def __init__(self, filters: Optional[List[FilterSpec]] = None):
        self._rules: List[FilterRule] = []
        #: Number of classify calls (slow-path lookups).
        self.lookups = 0
        #: Calls that fell through every rule.
        self.misses = 0
        if filters:
            for spec in filters:
                self.add(spec)

    def add(self, spec: FilterSpec) -> FilterRule:
        """Compile and install one filter spec."""
        rule = FilterRule(MatchSpec.compile(spec.match), spec.flowid, spec.prio)
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.prio)  # stable: ties keep insert order
        return rule

    def __len__(self) -> int:
        return len(self._rules)

    def classify(self, packet: Packet) -> Optional[str]:
        """Leaf class id for *packet*, or ``None`` on no match."""
        self.lookups += 1
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule.flowid
        self.misses += 1
        return None
