"""The ``fv`` command-line parser.

FlowValve's shell interface inherits ``tc`` option syntax (paper
§III-E). This module parses command lines such as::

    fv qdisc add dev eth0 root handle 1: htb default 30
    fv class add dev eth0 parent 1: classid 1:1 htb rate 10gbit
    fv class add dev eth0 parent 1:1 classid 1:20 fv rate 2gbit \
        prio 2 guarantee 2gbit borrow 1:30,1:21
    fv filter add dev eth0 parent 1: prio 1 match app=NC flowid 1:10
    fv filter add dev eth0 parent 1: prio 1 u32 \
        match ip src 10.0.0.1 match ip dport 80 0xffff flowid 1:10

into :class:`~repro.tc.ast.PolicyConfig` objects. Both the compact
``key=value`` match form (an ``fv`` convenience) and the classic
``u32`` form are accepted.
"""

from __future__ import annotations

import shlex
from typing import Dict, List, Optional

from ..errors import ParseError
from ..units import parse_rate
from .ast import ClassSpec, FilterSpec, PolicyConfig, QdiscSpec

__all__ = ["CommandParser", "parse_script"]


class _TokenStream:
    """Cursor over a token list with descriptive errors."""

    def __init__(self, tokens: List[str], command: str):
        self._tokens = tokens
        self._command = command
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)

    def peek(self) -> Optional[str]:
        return None if self.exhausted else self._tokens[self._pos]

    def next(self, expectation: str) -> str:
        if self.exhausted:
            raise ParseError(
                f"unexpected end of command, expected {expectation}",
                command=self._command,
                position=self._pos,
            )
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def expect(self, literal: str) -> None:
        token = self.next(repr(literal))
        if token != literal:
            raise ParseError(
                f"expected {literal!r}, got {token!r}",
                command=self._command,
                position=self._pos - 1,
            )

    def accept(self, literal: str) -> bool:
        if self.peek() == literal:
            self._pos += 1
            return True
        return False


class CommandParser:
    """Parses ``fv``/``tc`` commands into a :class:`PolicyConfig`.

    A parser instance accumulates state across commands (like the
    kernel does across ``tc`` invocations); :attr:`policy` holds the
    result.
    """

    def __init__(self, policy: Optional[PolicyConfig] = None):
        self.policy = policy if policy is not None else PolicyConfig()
        #: Device each object was attached to (informational).
        self.devices: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def parse(self, line: str) -> None:
        """Parse and apply one command line. Blank lines and ``#``
        comments are ignored."""
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return
        tokens = shlex.split(stripped)
        if tokens and tokens[0] in ("fv", "tc"):
            tokens = tokens[1:]
        if not tokens:
            return
        stream = _TokenStream(tokens, stripped)
        obj = stream.next("'qdisc', 'class' or 'filter'")
        if obj == "qdisc":
            self._parse_qdisc(stream)
        elif obj == "class":
            self._parse_class(stream)
        elif obj == "filter":
            self._parse_filter(stream)
        else:
            raise ParseError(f"unknown object {obj!r}", command=stripped, position=0)

    # ------------------------------------------------------------------
    def _parse_preamble(self, stream: _TokenStream) -> None:
        """Consume ``add dev <dev>`` (only ``add`` is supported)."""
        verb = stream.next("'add'")
        if verb != "add":
            raise ParseError(f"only 'add' is supported, got {verb!r}")
        if stream.accept("dev"):
            stream.next("device name")

    def _parse_qdisc(self, stream: _TokenStream) -> None:
        self._parse_preamble(stream)
        parent = "root"
        handle = ""
        if stream.accept("root"):
            parent = "root"
        elif stream.accept("parent"):
            parent = stream.next("parent id")
        if stream.accept("handle"):
            handle = stream.next("qdisc handle")
        kind = stream.next("qdisc kind")
        default = 0
        bands = 3
        while not stream.exhausted:
            option = stream.next("qdisc option")
            if option == "default":
                default = int(stream.next("default minor"), 16)
            elif option == "bands":
                bands = int(stream.next("band count"))
            else:
                raise ParseError(f"unknown qdisc option {option!r}")
        if not handle:
            raise ParseError("qdisc needs 'handle <major:>'")
        self.policy.add_qdisc(
            QdiscSpec(kind=kind, handle=handle, parent=parent, default=default, bands=bands)
        )

    def _parse_class(self, stream: _TokenStream) -> None:
        self._parse_preamble(stream)
        stream.expect("parent")
        parent = stream.next("parent id")
        stream.expect("classid")
        classid = stream.next("class id")
        # Optional class kind token (htb / fv) before options.
        if stream.peek() in ("htb", "fv", "prio"):
            stream.next("class kind")
        rate = 0.0
        ceil: Optional[float] = None
        weight = 1.0
        prio: Optional[int] = None
        guarantee: Optional[float] = None
        threshold: Optional[float] = None
        borrow: tuple = ()
        while not stream.exhausted:
            option = stream.next("class option")
            if option == "rate":
                rate = parse_rate(stream.next("rate value"))
            elif option == "ceil":
                ceil = parse_rate(stream.next("ceil value"))
            elif option == "weight":
                weight = float(stream.next("weight value"))
            elif option == "prio":
                prio = int(stream.next("prio value"))
            elif option == "guarantee":
                guarantee = parse_rate(stream.next("guarantee value"))
            elif option == "threshold":
                threshold = parse_rate(stream.next("threshold value"))
            elif option == "borrow":
                borrow = tuple(stream.next("borrow list").split(","))
            elif option == "quantum":
                stream.next("quantum value")  # accepted for tc parity, unused
            elif option == "burst":
                stream.next("burst value")  # accepted for tc parity, unused
            else:
                raise ParseError(f"unknown class option {option!r}")
        self.policy.add_class(
            ClassSpec(
                classid=classid,
                parent=parent,
                rate=rate,
                ceil=ceil,
                weight=weight,
                prio=prio,
                guarantee=guarantee,
                guarantee_threshold=threshold,
                borrow=borrow,
            )
        )

    def _parse_filter(self, stream: _TokenStream) -> None:
        self._parse_preamble(stream)
        parent = "1:"
        prio = 1
        match: Dict[str, str] = {}
        flowid = ""
        while not stream.exhausted:
            option = stream.next("filter option")
            if option == "parent":
                parent = stream.next("parent id")
            elif option == "protocol":
                stream.next("protocol name")  # accepted, unused
            elif option == "prio" or option == "pref":
                prio = int(stream.next("prio value"))
            elif option == "u32":
                continue  # marker token; matches follow
            elif option == "match":
                self._parse_match(stream, match)
            elif option == "flowid":
                flowid = stream.next("flow id")
            else:
                raise ParseError(f"unknown filter option {option!r}")
        if not flowid:
            raise ParseError("filter needs 'flowid <classid>'")
        self.policy.add_filter(FilterSpec(flowid=flowid, match=match, prio=prio, parent=parent))

    def _parse_match(self, stream: _TokenStream, match: Dict[str, str]) -> None:
        token = stream.next("match expression")
        if "=" in token:
            # fv compact form: match app=KVS
            key, _, value = token.partition("=")
            match[key] = value
            return
        if token == "ip":
            # u32 form: match ip <field> <value> [mask]
            field = stream.next("u32 field")
            value = stream.next("u32 value")
            if not stream.exhausted and stream.peek().startswith("0x"):
                stream.next("u32 mask")  # masks accepted, exact-match applied
            u32_fields = {"src": "src", "dst": "dst", "sport": "sport", "dport": "dport",
                          "protocol": "proto"}
            if field not in u32_fields:
                raise ParseError(f"unsupported u32 field {field!r}")
            match[u32_fields[field]] = value
            return
        raise ParseError(f"cannot parse match term {token!r}")


def parse_script(text: str, policy: Optional[PolicyConfig] = None) -> PolicyConfig:
    """Parse a multi-line ``fv`` script (``\\`` line continuations
    honoured) and return the resulting policy."""
    parser = CommandParser(policy)
    logical_line = ""
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if line.endswith("\\"):
            logical_line += line[:-1] + " "
            continue
        logical_line += line
        parser.parse(logical_line)
        logical_line = ""
    if logical_line.strip():
        parser.parse(logical_line)
    return parser.policy
