"""Semantic validation of policy configurations.

The front end refuses to push a broken policy to the NIC: every check
here corresponds to a way a structurally-parseable config could still
describe an unenforceable scheduling tree.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import ValidationError
from .ast import ClassSpec, PolicyConfig
from .classifier import MatchSpec

__all__ = ["validate_policy"]


def validate_policy(policy: PolicyConfig) -> None:
    """Raise :class:`ValidationError` describing every problem found.

    Checks performed:

    * exactly one root qdisc exists;
    * every class's parent is the root handle or another class;
    * the class graph is a tree (no cycles, single root attachment);
    * rates: a child's guaranteed rate may not exceed its parent's
      ceiling; ceil >= rate per class;
    * every filter flowid points at an existing *leaf* class;
    * borrow labels reference existing classes other than the borrower;
    * match fields compile;
    * the qdisc ``default`` minor, when set, names an existing leaf.
    """
    problems: List[str] = []
    root = None
    try:
        root = policy.root_qdisc()
    except Exception as exc:
        problems.append(str(exc))

    class_map: Dict[str, ClassSpec] = policy.class_map()
    handles = {q.handle for q in policy.qdiscs}

    # --- parent linkage & tree shape ---------------------------------
    for spec in policy.classes:
        if spec.parent not in class_map and spec.parent not in handles:
            problems.append(
                f"class {spec.classid}: parent {spec.parent!r} is neither a class nor a qdisc handle"
            )
    _check_acyclic(policy, class_map, problems)

    # --- rate sanity ---------------------------------------------------
    for spec in policy.classes:
        if spec.ceil is not None and spec.rate > spec.ceil:
            problems.append(
                f"class {spec.classid}: rate {spec.rate:.0f} exceeds ceil {spec.ceil:.0f}"
            )
        parent = class_map.get(spec.parent)
        if parent is not None and parent.ceil is not None and spec.rate > parent.ceil:
            problems.append(
                f"class {spec.classid}: rate {spec.rate:.0f} exceeds parent ceil {parent.ceil:.0f}"
            )
        if spec.guarantee is not None and spec.guarantee <= 0:
            problems.append(f"class {spec.classid}: guarantee must be positive")

    # --- filters ---------------------------------------------------------
    leaf_ids = {c.classid for c in policy.leaves()}
    for index, filt in enumerate(policy.filters):
        if filt.flowid not in class_map:
            problems.append(f"filter #{index}: flowid {filt.flowid!r} does not exist")
        elif filt.flowid not in leaf_ids:
            problems.append(f"filter #{index}: flowid {filt.flowid!r} is not a leaf class")
        try:
            MatchSpec.compile(filt.match)
        except ValidationError as exc:
            problems.append(f"filter #{index}: {exc}")

    # --- borrow labels ----------------------------------------------------
    for spec in policy.classes:
        for lender in spec.borrow:
            if lender == spec.classid:
                problems.append(f"class {spec.classid}: cannot borrow from itself")
            elif lender not in class_map:
                problems.append(f"class {spec.classid}: borrow target {lender!r} does not exist")

    # --- default class -----------------------------------------------------
    if root is not None and root.default:
        major, _ = _split_handle(root.handle)
        default_id = f"{major}:{root.default:x}"
        if default_id not in leaf_ids:
            problems.append(
                f"qdisc {root.handle}: default class {default_id!r} is not an existing leaf"
            )

    if problems:
        raise ValidationError("; ".join(problems))


def _split_handle(handle: str) -> "tuple[str, str]":
    major, _, minor = handle.partition(":")
    return major, minor


def _check_acyclic(
    policy: PolicyConfig, class_map: Dict[str, ClassSpec], problems: List[str]
) -> None:
    """Detect cycles by walking each class up to a qdisc handle."""
    handles = {q.handle for q in policy.qdiscs}
    for spec in policy.classes:
        seen: Set[str] = {spec.classid}
        cursor = spec.parent
        while cursor in class_map:
            if cursor in seen:
                problems.append(f"class {spec.classid}: cycle through {cursor!r}")
                break
            seen.add(cursor)
            cursor = class_map[cursor].parent
        else:
            if cursor not in handles and spec.parent in class_map:
                # Walked off the top without reaching a qdisc handle.
                problems.append(
                    f"class {spec.classid}: hierarchy does not reach a qdisc handle"
                )
