"""Traffic-control front end: policy AST, ``fv`` command parser, and
packet classifier.

This package is FlowValve's *front end* in the paper's Figure 5: the
host-side service that takes ``fv`` command scripts (inheriting ``tc``
option syntax), builds a validated policy description, and hands it to
the back end (:mod:`repro.core`) which constructs the scheduling tree
and filter tables.
"""

from .ast import ClassSpec, FilterSpec, PolicyConfig, QdiscSpec, parse_classid
from .classifier import Classifier, FilterRule, MatchSpec
from .parser import CommandParser, parse_script
from .validate import validate_policy

__all__ = [
    "ClassSpec",
    "FilterSpec",
    "PolicyConfig",
    "QdiscSpec",
    "parse_classid",
    "Classifier",
    "FilterRule",
    "MatchSpec",
    "CommandParser",
    "parse_script",
    "validate_policy",
]
