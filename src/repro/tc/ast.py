"""Policy abstract syntax: qdiscs, classes, and filters.

A :class:`PolicyConfig` is the in-memory form of an ``fv`` script — the
same information ``tc`` keeps in the kernel: one or more qdiscs, a
hierarchy of traffic classes with rate parameters, and a prioritised
filter list mapping packets to leaf classes.

Identifiers follow ``tc`` convention: a qdisc handle is ``"major:"``
(e.g. ``"1:"``) and a class id is ``"major:minor"`` (e.g. ``"1:10"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PolicyError

__all__ = ["QdiscSpec", "ClassSpec", "FilterSpec", "PolicyConfig", "parse_classid"]

#: Qdisc kinds the reproduction understands.
QDISC_KINDS = ("htb", "prio", "fv")


def parse_classid(text: str) -> Tuple[int, int]:
    """Split ``"major:minor"`` into ints; minor defaults to 0 for a
    bare handle like ``"1:"``.

    >>> parse_classid("1:10")
    (1, 10)
    >>> parse_classid("1:")
    (1, 0)
    """
    if ":" not in text:
        raise PolicyError(f"malformed class id {text!r} (expected 'major:minor')")
    major_text, _, minor_text = text.partition(":")
    try:
        major = int(major_text, 16) if major_text else 0
        minor = int(minor_text, 16) if minor_text else 0
    except ValueError:
        raise PolicyError(f"malformed class id {text!r}") from None
    return major, minor


@dataclass
class QdiscSpec:
    """One queueing discipline attachment.

    Attributes
    ----------
    kind: ``"htb"``, ``"prio"`` or ``"fv"`` (FlowValve's native kind,
        accepting the union of HTB and PRIO class parameters).
    handle: the qdisc handle, e.g. ``"1:"``.
    parent: ``"root"`` or the parent class id for chained qdiscs.
    default: minor number of the class unclassified traffic falls into
        (HTB ``default`` option); 0 means drop unclassified.
    bands: PRIO band count (PRIO only).
    """

    kind: str
    handle: str
    parent: str = "root"
    default: int = 0
    bands: int = 3

    def __post_init__(self) -> None:
        if self.kind not in QDISC_KINDS:
            raise PolicyError(f"unknown qdisc kind {self.kind!r}")
        parse_classid(self.handle)


@dataclass
class ClassSpec:
    """One traffic class in the hierarchy.

    Attributes
    ----------
    classid: this class's id, e.g. ``"1:10"``.
    parent: parent class id or the qdisc handle for top-level classes.
    rate: guaranteed rate in bit/s (HTB ``rate``). For FlowValve this is
        the class's committed share used by the guarantee templates.
    ceil: ceiling rate in bit/s; ``None`` means "parent's rate".
    weight: relative weight among siblings for proportional sharing.
    prio: priority among siblings (lower number = served first);
        ``None`` means no priority relation.
    guarantee: minimum bandwidth that must remain available to this
        class while a higher-priority sibling is active (the paper's
        "2 Gbps for ML" condition). ``None`` disables the template.
    guarantee_threshold: parent bandwidth above which the guarantee
        applies; below it siblings fall back to weighted sharing
        (4 Gbps in the motivation example). Defaults to twice the
        guarantee when a guarantee is set.
    borrow: borrowing class label — lender class ids queried, in order,
        when this class's own bucket is red (paper §IV-B).
    """

    classid: str
    parent: str
    rate: float = 0.0
    ceil: Optional[float] = None
    weight: float = 1.0
    prio: Optional[int] = None
    guarantee: Optional[float] = None
    guarantee_threshold: Optional[float] = None
    borrow: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        parse_classid(self.classid)
        if self.rate < 0:
            raise PolicyError(f"class {self.classid}: negative rate")
        if self.ceil is not None and self.ceil <= 0:
            raise PolicyError(f"class {self.classid}: ceil must be positive")
        if self.weight <= 0:
            raise PolicyError(f"class {self.classid}: weight must be positive")
        if self.guarantee is not None and self.guarantee_threshold is None:
            self.guarantee_threshold = 2 * self.guarantee


@dataclass
class FilterSpec:
    """One classification rule.

    ``match`` holds field/value pairs (see
    :class:`~repro.tc.classifier.MatchSpec`); ``flowid`` is the leaf
    class matched packets are steered to; lower ``prio`` rules are
    consulted first, first match wins — ``tc`` semantics.
    """

    flowid: str
    match: Dict[str, str] = field(default_factory=dict)
    prio: int = 1
    parent: str = "1:"

    def __post_init__(self) -> None:
        parse_classid(self.flowid)


@dataclass
class PolicyConfig:
    """A complete policy: qdiscs + classes + filters.

    Built either programmatically or by :func:`repro.tc.parse_script`;
    consumed by :func:`repro.tc.validate_policy` and then by the
    FlowValve front end (:mod:`repro.core.frontend`) or the baseline
    schedulers.
    """

    qdiscs: List[QdiscSpec] = field(default_factory=list)
    classes: List[ClassSpec] = field(default_factory=list)
    filters: List[FilterSpec] = field(default_factory=list)

    def add_qdisc(self, qdisc: QdiscSpec) -> QdiscSpec:
        """Attach a qdisc; duplicate handles are rejected."""
        if any(q.handle == qdisc.handle for q in self.qdiscs):
            raise PolicyError(f"duplicate qdisc handle {qdisc.handle!r}")
        self.qdiscs.append(qdisc)
        return qdisc

    def add_class(self, spec: ClassSpec) -> ClassSpec:
        """Add a traffic class; duplicate class ids are rejected."""
        if any(c.classid == spec.classid for c in self.classes):
            raise PolicyError(f"duplicate class id {spec.classid!r}")
        self.classes.append(spec)
        return spec

    def add_filter(self, spec: FilterSpec) -> FilterSpec:
        """Add a filter rule (kept in insertion order within a prio)."""
        self.filters.append(spec)
        return spec

    # ------------------------------------------------------------------
    def root_qdisc(self) -> QdiscSpec:
        """The qdisc attached at root; raises if absent or ambiguous."""
        roots = [q for q in self.qdiscs if q.parent == "root"]
        if not roots:
            raise PolicyError("policy has no root qdisc")
        if len(roots) > 1:
            raise PolicyError("policy has multiple root qdiscs")
        return roots[0]

    def class_map(self) -> Dict[str, ClassSpec]:
        """Class id -> spec mapping."""
        return {c.classid: c for c in self.classes}

    def children_of(self, parent_id: str) -> List[ClassSpec]:
        """Direct child classes of *parent_id* (a class id or handle)."""
        return [c for c in self.classes if c.parent == parent_id]

    def leaves(self) -> List[ClassSpec]:
        """Classes that have no child classes."""
        parents = {c.parent for c in self.classes}
        return [c for c in self.classes if c.classid not in parents]
