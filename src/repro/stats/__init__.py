"""Measurement utilities: time series, rate meters, latency summaries,
CPU accounting, and table rendering for the benchmark reports."""

from .timeseries import TimeSeries, RateSeries
from .rates import EwmaRate, WindowedRate
from .latency import (
    LatencySummary,
    summarize_latencies,
    percentile,
    percentile_sorted,
    jitter,
)
from .sketch import QuantileSketch, WindowedRateSketch
from .cpu import CoreUsage, CpuReport
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    NullMetricsRegistry,
    write_jsonl,
)
from .perf import HotpathResult, measure_run
from .report import Table, render_table, format_series

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSampler",
    "NullMetricsRegistry",
    "write_jsonl",
    "HotpathResult",
    "measure_run",
    "TimeSeries",
    "RateSeries",
    "EwmaRate",
    "WindowedRate",
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "percentile_sorted",
    "jitter",
    "QuantileSketch",
    "WindowedRateSketch",
    "CoreUsage",
    "CpuReport",
    "Table",
    "render_table",
    "format_series",
]
