"""Plain-text rendering of result tables and series.

The benchmark harness prints the same rows/series the paper reports;
this module owns the formatting so every bench produces consistent,
diff-able output (captured into ``bench_output.txt``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Table", "render_table", "format_series"]


@dataclass
class Table:
    """A titled table: header row plus data rows (stringified cells)."""

    title: str
    header: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are converted with ``str``."""
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """The table as aligned monospace text."""
        return render_table(self)


def render_table(table: Table) -> str:
    """Render *table* with column alignment and a rule under the header."""
    columns = len(table.header)
    widths = [len(str(h)) for h in table.header]
    for row in table.rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(row[i]))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(cells[i]).ljust(widths[i]) for i in range(columns)).rstrip()

    lines = [table.title, fmt([str(h) for h in table.header]), "-" * (sum(widths) + 2 * (columns - 1))]
    lines.extend(fmt(row) for row in table.rows)
    return "\n".join(lines)


def format_series(
    name: str,
    samples: Iterable[Tuple[float, float]],
    time_unit: str = "s",
    value_unit: str = "",
    precision: int = 2,
) -> str:
    """Render a (time, value) series as one compact line per sample.

    Intended for the Fig. 3/11 timeline reproductions where the "figure"
    is a rate-over-time curve per traffic class.
    """
    parts = [f"{name}:"]
    for t, v in samples:
        parts.append(f"  {t:8.2f}{time_unit}  {v:12.{precision}f}{value_unit}")
    return "\n".join(parts)
