"""Constant-memory streaming statistics (ROADMAP item 4).

Million-flow trace runs deliver millions of frames; keeping every
one-way delay sample (``PacketSink.record_delays``) or a rate bin per
elapsed window (:class:`~repro.stats.timeseries.RateSeries`) makes
observation memory grow with traffic. This module provides the two
bounded replacements the megaflow engine routes its accounting
through:

* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile
  sketch (Masson et al., VLDB'19): values land in geometrically-sized
  buckets ``[γ^(i-1), γ^i)`` with ``γ = (1+ε)/(1-ε)``, so any
  reported quantile is within *relative* error ε of the exact sample
  quantile while the footprint stays at the number of *occupied*
  buckets (bounded by ``max_bins``, and in practice by the dynamic
  range of the data — ~900 buckets span twelve decades at ε = 1%).
  Count, sum/mean, min, max and jitter (Welford) are tracked exactly;
  only the percentiles are approximate. Sketches over the same ε are
  mergeable (shard fan-in).
* :class:`WindowedRateSketch` — a fixed-size ring of time bins for
  "recent rate" queries: constant memory in both packet count and run
  length, unlike ``RateSeries``'s one-bin-per-elapsed-window list.

Exact-list mode stays available everywhere these are wired in; the
conformance suite (``tests/test_stats_sketch.py``) bounds the sketch
error against the exact summaries.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .latency import LatencySummary

__all__ = ["QuantileSketch", "WindowedRateSketch"]


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch with exact moments.

    Parameters
    ----------
    relative_error: guaranteed relative accuracy ε of any quantile
        (default 0.5%, twice as tight as the 1% acceptance bound).
    max_bins: hard footprint cap. When the occupied-bucket count would
        exceed it, the lowest buckets collapse together (DDSketch's
        policy), sacrificing accuracy only in the extreme low tail.
    min_value: values below this land in a dedicated underflow bucket
        (log buckets cannot represent 0); delays in this simulator are
        ≥ one DMA latency, so the default never fires in practice.
    """

    __slots__ = (
        "relative_error", "gamma", "_log_gamma", "max_bins", "min_value",
        "_bins", "_underflow", "count", "_sum", "_min", "_max",
        "_mean", "_m2", "collapsed",
    )

    def __init__(
        self,
        relative_error: float = 0.005,
        max_bins: int = 4096,
        min_value: float = 1e-12,
    ):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.relative_error = relative_error
        self.gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self.gamma)
        self.max_bins = max_bins
        self.min_value = min_value
        #: bucket index -> count; index i covers (γ^(i-1), γ^i].
        self._bins: Dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # Welford accumulators for exact population stddev (jitter).
        self._mean = 0.0
        self._m2 = 0.0
        #: Lowest-bucket collapses performed under the footprint cap.
        self.collapsed = 0

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one sample. Negative values are clamped into the
        underflow bucket (delays are non-negative by construction)."""
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min_value:
            self._underflow += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        bins = self._bins
        bins[index] = bins.get(index, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse()

    def _collapse(self) -> None:
        """Fold the lowest bucket into its neighbour (low-tail accuracy
        is sacrificed first, as in DDSketch's collapsing policy)."""
        lowest = min(self._bins)
        count = self._bins.pop(lowest)
        target = min(self._bins)
        self._bins[target] = self._bins.get(target, 0) + count
        self.collapsed += 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* (same ε) into this sketch."""
        if other.gamma != self.gamma:
            raise ValueError(
                "cannot merge sketches with different relative_error"
            )
        bins = self._bins
        for index, count in other._bins.items():
            bins[index] = bins.get(index, 0) + count
        while len(bins) > self.max_bins:
            self._collapse()
        self._underflow += other._underflow
        if other.count:
            # Chan et al. parallel-variance combine keeps jitter exact.
            total = self.count + other.count
            delta = other._mean - self._mean
            self._m2 += other._m2 + delta * delta * self.count * other.count / total
            self._mean += delta * other.count / total
            self.count = total
            self._sum += other._sum
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max

    # ------------------------------------------------------------------
    @property
    def bin_count(self) -> int:
        """Occupied buckets — the sketch's entire variable footprint."""
        return len(self._bins) + (1 if self._underflow else 0)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    @property
    def jitter(self) -> float:
        """Exact population standard deviation (Welford), matching
        :func:`repro.stats.latency.jitter` up to float associativity."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / self.count)

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0..1), within ε relative error.

        Returns the log-midpoint of the bucket holding the target
        rank; exact min/max are returned at the extremes so the
        reported range never exceeds the observed one.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of empty sketch")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * (self.count - 1)
        cum = self._underflow
        if cum > rank:
            return self.min_value
        gamma = self.gamma
        for index in sorted(self._bins):
            cum += self._bins[index]
            if cum > rank:
                value = 2.0 * gamma ** index / (gamma + 1.0)
                # Clamp into the exact observed range: bucket midpoints
                # can poke past min/max for extreme-rank queries.
                if value < self._min:
                    return self._min
                if value > self._max:
                    return self._max
                return value
        return self._max

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100), within ε relative error."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def summary(self) -> LatencySummary:
        """A :class:`LatencySummary` — count/mean/min/max/jitter exact,
        p50/p99 within ε relative error."""
        if self.count == 0:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencySummary(
            count=self.count,
            mean=self.mean,
            p50=self.quantile(0.50),
            p99=self.quantile(0.99),
            maximum=self._max,
            minimum=self._min,
            jitter=self.jitter,
        )


class WindowedRateSketch:
    """Recent-rate estimator over a fixed ring of time bins.

    ``add(t, amount)`` accumulates into the bin containing *t*;
    :meth:`rate` reports amount-per-second over the trailing window.
    Bins older than the window are recycled in place, so the footprint
    is ``bins`` floats regardless of run length — the constant-memory
    counterpart of :class:`~repro.stats.timeseries.RateSeries` for
    runs too long to keep a bin per elapsed window.

    Times must be non-decreasing (simulation deliveries are).
    """

    __slots__ = ("window", "bins", "_width", "_counts", "_index", "_total", "_last_time")

    def __init__(self, window: float = 0.1, bins: int = 64):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.window = window
        self.bins = bins
        self._width = window / bins
        self._counts: List[float] = [0.0] * bins
        #: Absolute bin index of the newest bin with data.
        self._index = -1
        self._total = 0.0
        self._last_time = -math.inf

    @property
    def total(self) -> float:
        """Sum of all amounts ever added (exact)."""
        return self._total

    def _advance(self, index: int) -> None:
        counts = self._counts
        bins = self.bins
        current = self._index
        if current < 0 or index - current >= bins:
            for i in range(bins):
                counts[i] = 0.0
        else:
            for i in range(current + 1, index + 1):
                counts[i % bins] = 0.0
        self._index = index

    def add(self, time: float, amount: float) -> None:
        if time < 0:
            raise ValueError(f"times must be >= 0, got {time}")
        if time < self._last_time:
            raise ValueError(
                f"times must be non-decreasing ({time} < {self._last_time})"
            )
        self._last_time = time
        index = int(time / self._width)
        if index > self._index:
            self._advance(index)
        self._counts[index % self.bins] += amount
        self._total += amount

    def rate(self, now: Optional[float] = None) -> float:
        """Amount per second over ``[now - window, now]``.

        ``now=None`` reads at the last added time. Bins newer than the
        data are implicitly zero; bins older than the window are gone.
        """
        if self._index < 0:
            return 0.0
        if now is None:
            now = self._last_time
        index = int(now / self._width)
        if index > self._index:
            self._advance(index)
        return sum(self._counts) / self.window

    def mean_rate(self, elapsed: float) -> float:
        """Exact average rate over ``[0, elapsed]``."""
        if elapsed <= 0:
            return 0.0
        return self._total / elapsed
