"""CPU-core utilisation accounting.

The paper's headline operational claim is that offloading scheduling
"contributes to saving at least two CPU cores" (§V-B). To reproduce
that we track, per host core, how much simulated time was spent busy on
each activity (application send path, scheduler enqueue/dequeue, DPDK
polling) and convert it to core-equivalents.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["CoreUsage", "CpuReport"]


@dataclass
class CoreUsage:
    """Busy-time ledger for one host CPU core."""

    core_id: int
    #: Busy seconds per activity name ("app", "qdisc", "dpdk-poll", ...).
    busy: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def charge(self, activity: str, seconds: float) -> None:
        """Add *seconds* of busy time under *activity*."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.busy[activity] += seconds

    def busy_seconds(self) -> float:
        """Total busy time across activities."""
        return sum(self.busy.values())

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over *elapsed* seconds, clamped to [0, 1]."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds() / elapsed)


class CpuReport:
    """Aggregates :class:`CoreUsage` ledgers into report numbers."""

    def __init__(self) -> None:
        self._cores: Dict[int, CoreUsage] = {}

    def core(self, core_id: int) -> CoreUsage:
        """The ledger for *core_id*, created on first use."""
        usage = self._cores.get(core_id)
        if usage is None:
            usage = CoreUsage(core_id)
            self._cores[core_id] = usage
        return usage

    @property
    def cores(self) -> List[CoreUsage]:
        """All ledgers, ordered by core id."""
        return [self._cores[k] for k in sorted(self._cores)]

    def total_busy(self, activity_prefix: str = "") -> float:
        """Total busy seconds, optionally filtered by activity prefix."""
        total = 0.0
        for usage in self._cores.values():
            for activity, seconds in usage.busy.items():
                if activity.startswith(activity_prefix):
                    total += seconds
        return total

    def core_equivalents(self, elapsed: float, activity_prefix: str = "") -> float:
        """Busy time expressed as a number of fully-utilised cores.

        ``core_equivalents(t, "qdisc")`` answers "how many cores did
        the scheduler itself cost?" — the quantity the paper's
        CPU-saving claim is about.
        """
        if elapsed <= 0:
            return 0.0
        return self.total_busy(activity_prefix) / elapsed

    def cores_in_use(self, elapsed: float, threshold: float = 0.05) -> int:
        """Number of cores with utilisation above *threshold*."""
        return sum(1 for usage in self._cores.values() if usage.utilization(elapsed) > threshold)
