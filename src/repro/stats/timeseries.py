"""Time-series containers.

:class:`TimeSeries` stores raw ``(time, value)`` samples;
:class:`RateSeries` turns a stream of sized events (packet deliveries)
into a binned rate curve — exactly what the paper's Fig. 3/11
throughput-over-time plots are made of.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["TimeSeries", "RateSeries"]


class TimeSeries:
    """Append-only ``(time, value)`` samples with query helpers.

    Times must be appended in non-decreasing order (simulation time
    only moves forward), which keeps queries O(log n).
    """

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, value: float) -> None:
        """Add one sample; *time* must not precede the last sample."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series must be appended in order ({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Most recent value at or before *time* (step interpolation)."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return default
        return self.values[index]

    def slice(self, start: float, end: float) -> "Tuple[Sequence[float], Sequence[float]]":
        """Samples with ``start <= time < end`` as (times, values)."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.times[lo:hi], self.values[lo:hi]

    def mean(self, start: float = -math.inf, end: float = math.inf) -> float:
        """Arithmetic mean of sample values in ``[start, end)``."""
        _, values = self.slice(max(start, self.times[0]) if self.times else 0.0, end) \
            if self.times else ((), ())
        if not values:
            return 0.0
        return sum(values) / len(values)


class RateSeries:
    """Bins sized events into fixed windows and reports rates.

    ``add(t, amount)`` accumulates *amount* (e.g. bits) into the bin
    containing *t*; :meth:`samples` yields ``(bin_end_time, rate)``
    where rate is amount-per-second over the window.
    """

    def __init__(self, window: float = 0.1):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._bins: List[float] = []
        self._total = 0.0
        #: Latest event time ever added — marks where the data ends, so
        #: mean_rate() can pro-rate the final, partially-filled bin.
        self._last_time = -math.inf

    @property
    def total(self) -> float:
        """Sum of all amounts ever added."""
        return self._total

    def add(self, time: float, amount: float) -> None:
        """Accumulate *amount* at *time* (times may arrive unordered
        within reason; bin index is computed absolutely).

        Negative times are rejected: simulation time starts at zero,
        and ``int(time / window)`` on a sufficiently negative time
        yields a negative index that Python would silently resolve to
        the *last* bin, corrupting the most recent rate sample.
        """
        if time < 0:
            raise ValueError(f"RateSeries times must be >= 0, got {time}")
        index = int(time / self.window)
        bins = self._bins
        if index >= len(bins):
            bins.extend([0.0] * (index + 1 - len(bins)))
        bins[index] += amount
        self._total += amount
        if time > self._last_time:
            self._last_time = time

    def samples(self) -> Iterable[Tuple[float, float]]:
        """Yield ``(bin_end_time, rate_per_second)`` for every bin."""
        for index, amount in enumerate(self._bins):
            yield ((index + 1) * self.window, amount / self.window)

    def rate_at(self, time: float) -> float:
        """Rate of the bin containing *time* (0 outside recorded data)."""
        index = int(time / self.window)
        if 0 <= index < len(self._bins):
            return self._bins[index] / self.window
        return 0.0

    def mean_rate(self, start: float, end: float) -> float:
        """Average rate over ``[start, end)``.

        Bins only partially covered by the window contribute pro-rata,
        assuming their amount arrived uniformly over the bin's *data
        span* — the full bin for interior bins, but only up to the last
        recorded event time for the final bin (a run that stops mid-bin
        has put all of that bin's amount before the stop). Dividing the
        covered amount by the exact ``end - start`` then yields an
        unbiased mean. The previous implementation counted the final
        bin's amount in full but divided by *whole* bins, so any window
        whose end fell mid-bin systematically under-reported the rate.
        """
        if end <= start:
            return 0.0
        start = max(0.0, start)
        if end <= start:
            return 0.0
        window = self.window
        bins = self._bins
        last = len(bins) - 1
        lo = int(start / window)
        hi = max(lo + 1, int(math.ceil(end / window)))
        total = 0.0
        for index in range(lo, min(hi, len(bins))):
            amount = bins[index]
            if not amount:
                continue
            bin_start = index * window
            # The span the bin's amount is spread over: the final bin's
            # data ends at the last add, not at the bin edge.
            span_end = bin_start + window
            if index == last and self._last_time < span_end:
                span_end = self._last_time
            overlap = min(end, span_end) - max(start, bin_start)
            span = span_end - bin_start
            if overlap >= span:
                total += amount
            elif overlap > 0:
                total += amount * (overlap / span)
        return total / (end - start)
