"""Time-series containers.

:class:`TimeSeries` stores raw ``(time, value)`` samples;
:class:`RateSeries` turns a stream of sized events (packet deliveries)
into a binned rate curve — exactly what the paper's Fig. 3/11
throughput-over-time plots are made of.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["TimeSeries", "RateSeries"]


class TimeSeries:
    """Append-only ``(time, value)`` samples with query helpers.

    Times must be appended in non-decreasing order (simulation time
    only moves forward), which keeps queries O(log n).
    """

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, value: float) -> None:
        """Add one sample; *time* must not precede the last sample."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series must be appended in order ({time} < {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Most recent value at or before *time* (step interpolation)."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return default
        return self.values[index]

    def slice(self, start: float, end: float) -> "Tuple[Sequence[float], Sequence[float]]":
        """Samples with ``start <= time < end`` as (times, values)."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.times[lo:hi], self.values[lo:hi]

    def mean(self, start: float = -math.inf, end: float = math.inf) -> float:
        """Arithmetic mean of sample values in ``[start, end)``."""
        _, values = self.slice(max(start, self.times[0]) if self.times else 0.0, end) \
            if self.times else ((), ())
        if not values:
            return 0.0
        return sum(values) / len(values)


class RateSeries:
    """Bins sized events into fixed windows and reports rates.

    ``add(t, amount)`` accumulates *amount* (e.g. bits) into the bin
    containing *t*; :meth:`samples` yields ``(bin_end_time, rate)``
    where rate is amount-per-second over the window.
    """

    def __init__(self, window: float = 0.1):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._bins: List[float] = []
        self._total = 0.0

    @property
    def total(self) -> float:
        """Sum of all amounts ever added."""
        return self._total

    def add(self, time: float, amount: float) -> None:
        """Accumulate *amount* at *time* (times may arrive unordered
        within reason; bin index is computed absolutely)."""
        index = int(time / self.window)
        bins = self._bins
        if index >= len(bins):
            bins.extend([0.0] * (index + 1 - len(bins)))
        bins[index] += amount
        self._total += amount

    def samples(self) -> Iterable[Tuple[float, float]]:
        """Yield ``(bin_end_time, rate_per_second)`` for every bin."""
        for index, amount in enumerate(self._bins):
            yield ((index + 1) * self.window, amount / self.window)

    def rate_at(self, time: float) -> float:
        """Rate of the bin containing *time* (0 outside recorded data)."""
        index = int(time / self.window)
        if 0 <= index < len(self._bins):
            return self._bins[index] / self.window
        return 0.0

    def mean_rate(self, start: float, end: float) -> float:
        """Average rate over ``[start, end)`` (bin-aligned)."""
        if end <= start:
            return 0.0
        lo = int(start / self.window)
        hi = max(lo + 1, int(math.ceil(end / self.window)))
        window_bins = self._bins[lo:hi]
        if not window_bins:
            return 0.0
        return sum(window_bins) / ((hi - lo) * self.window)
