"""Hot-path micro-profiler: events/sec and packets/sec of a sim run.

The DES kernel's throughput bounds every experiment's wall time, so
regressions there silently make the whole suite slower. This module
wraps one simulation run with wall-clock measurement and derives the
two rates that matter — simulator events per second (kernel dispatch
cost) and packets per second (end-to-end per-packet cost) — plus the
events-per-packet ratio, which is *deterministic* for a fixed seed and
therefore the stable thing to compare across machines.

Used by ``benchmarks/test_bench_hotpath.py``, which persists the
result next to the repo's other benchmark artifacts as
``BENCH_hotpath.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional

__all__ = ["HotpathResult", "measure_run", "write_json"]


@dataclass
class HotpathResult:
    """One measured simulation run.

    Rates are wall-clock dependent; ``events`` / ``packets`` /
    ``events_per_packet`` are reproducible exactly for a fixed seed.
    """

    label: str
    wall_seconds: float
    events: int
    packets: int
    events_per_sec: float
    packets_per_sec: float
    events_per_packet: float

    def summary(self) -> str:
        """One-line human rendering for bench output."""
        return (
            f"{self.label}: wall={self.wall_seconds:.2f}s "
            f"events={self.events} packets={self.packets} "
            f"({self.events_per_sec:,.0f} ev/s, {self.packets_per_sec:,.0f} pkt/s, "
            f"{self.events_per_packet:.1f} ev/pkt)"
        )

    def to_table(self):
        """Render as a metric/value table (unified experiment-result
        contract; campaign runs of the ``hotpath`` spec report through
        this)."""
        from .report import Table

        table = Table(f"hotpath — {self.label}", ["metric", "value"])
        table.add_row("wall seconds", f"{self.wall_seconds:.3f}")
        table.add_row("events", self.events)
        table.add_row("packets", self.packets)
        table.add_row("events/sec", f"{self.events_per_sec:,.0f}")
        table.add_row("packets/sec", f"{self.packets_per_sec:,.0f}")
        table.add_row("events/packet", f"{self.events_per_packet:.2f}")
        return table


def measure_run(
    sim,
    run: Callable[[], None],
    packets_of: Callable[[], int],
    label: str = "run",
) -> HotpathResult:
    """Time ``run()`` and derive kernel/packet rates.

    Parameters
    ----------
    sim: the simulator the run drives (read for ``events_executed``).
    run: executes the simulation (e.g. ``lambda: sim.run(until=20)``).
    packets_of: returns the packet count after the run (e.g.
        ``lambda: pipeline.submitted``).
    label: tag recorded in the result.
    """
    events_before = sim.events_executed
    start = time.perf_counter()
    run()
    wall = time.perf_counter() - start
    events = sim.events_executed - events_before
    packets = packets_of()
    # Degenerate runs (empty queue, zero-length horizon) still produce
    # a well-formed result; rates are 0 rather than a ZeroDivisionError.
    safe_wall = wall if wall > 0 else float("inf")
    return HotpathResult(
        label=label,
        wall_seconds=wall,
        events=events,
        packets=packets,
        events_per_sec=events / safe_wall,
        packets_per_sec=packets / safe_wall,
        events_per_packet=(events / packets) if packets else 0.0,
    )


def write_json(path: str, result: HotpathResult, extra: Optional[dict] = None) -> None:
    """Persist *result* (plus optional comparison context) as JSON."""
    payload = asdict(result)
    if extra:
        payload.update(extra)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
