"""The metrics registry — named counters, gauges and histograms.

Production schedulers ship first-class statistics (the kernel qdisc's
``tc -s`` counters, DPDK's ``rte_sched`` stats API); this module is the
reproduction's equivalent. Components obtain named instruments from a
:class:`MetricsRegistry` and update them on the hot path, or — cheaper
still — register *probes*: zero-argument callables evaluated only when
a snapshot is taken, so counters a component already keeps (ring
depths, drop tallies) cost nothing extra per packet.

The registry mirrors the :class:`~repro.sim.trace.Tracer` /
``NullTracer`` split: :class:`NullMetricsRegistry` is the default on
every simulator and discards everything at near zero cost, so
instrumented hot paths guard with ``if registry.enabled:`` exactly like
they do for tracing.

:class:`MetricsSampler` is a simulation process that snapshots a
registry on a fixed period; its rows (and any registry snapshot) export
to JSONL for offline analysis alongside :meth:`Tracer.to_jsonl`.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "MetricsSampler",
    "write_jsonl",
]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must not be negative for a counter)."""
        self.value += amount


class Gauge:
    """A named value that moves both ways (queue depth, rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucketed distribution (latency, batch sizes).

    ``bounds`` are the inclusive upper edges of each bucket; one
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    #: Default bounds suit seconds-scale latencies (1 µs .. 1 s).
    DEFAULT_BOUNDS = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
    )

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: List[float] = sorted(bounds if bounds is not None else self.DEFAULT_BOUNDS)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly state: bucket counts keyed by upper bound."""
        buckets = {f"le_{bound:g}": count for bound, count in zip(self.bounds, self.counts)}
        buckets["overflow"] = self.counts[-1]
        return {"count": self.count, "sum": self.total, "mean": self.mean, "buckets": buckets}


class MetricsRegistry:
    """Creates, deduplicates and snapshots named instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, so independent
    components can share a tally. :meth:`probe` registers a callable
    evaluated lazily at snapshot time — the preferred hook for state a
    component already maintains.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._probes: Dict[str, Callable[[], Any]] = {}

    @property
    def enabled(self) -> bool:
        """True — instruments record (see :class:`NullMetricsRegistry`)."""
        return True

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register *fn* to supply ``name``'s value at snapshot time."""
        self._probes[name] = fn

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered instrument and probe names, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms) | set(self._probes)
        )

    def snapshot(self) -> Dict[str, Any]:
        """One flat dict of every instrument's current value.

        Counters and gauges map to scalars, histograms to nested
        dicts, probes to whatever their callable returns (which must be
        JSON-serialisable for the JSONL export).
        """
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.snapshot()
        for name, fn in self._probes.items():
            out[name] = fn()
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    value = 0.0
    count = 0
    mean = 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Discards everything; the default on every simulator.

    All instrument getters return one shared no-op object and probes
    are ignored, so components can instrument unconditionally — though
    hot paths should still guard on :attr:`enabled` to skip building
    payloads at all.
    """

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}


class MetricsSampler:
    """Periodically snapshots a registry during a simulation run.

    A generator process on the shared simulator: every ``interval``
    simulated seconds it appends ``{"time": now, **registry.snapshot()}``
    to :attr:`rows`. With a :class:`NullMetricsRegistry` no process is
    even started, so the default configuration schedules zero events.
    """

    def __init__(self, sim, registry: MetricsRegistry, interval: float = 0.1):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.rows: List[Dict[str, Any]] = []
        self._process = sim.process(self._run()) if registry.enabled else None

    def _run(self):
        interval = self.interval
        while True:
            yield interval
            self.sample()

    def sample(self) -> Dict[str, Any]:
        """Take one snapshot now (also usable manually, e.g. at t=end)."""
        row = {"time": self.sim.now}
        row.update(self.registry.snapshot())
        self.rows.append(row)
        return row

    def to_jsonl(self, path: str) -> int:
        """Write all sampled rows as JSON lines; returns the row count."""
        return write_jsonl(path, self.rows)


def write_jsonl(path: str, rows: List[Dict[str, Any]]) -> int:
    """Write dict *rows* one-JSON-object-per-line; returns the count."""
    with open(path, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return len(rows)
