"""Online rate estimators.

Both estimators answer "how fast is this flow *right now*?" — the
question at the heart of FlowValve's Methodology (Section III-D):
processing cores throttle a low-priority flow to ``link - R_high``
using an *instant* rate estimate of the high-priority flow.

:class:`WindowedRate` matches the paper's Eq. 3 (token consumption per
update interval); :class:`EwmaRate` is a smoother alternative used by
the DPDK baseline's oversubscription logic.
"""

from __future__ import annotations

import math

__all__ = ["EwmaRate", "WindowedRate"]


class EwmaRate:
    """Exponentially-weighted moving-average rate estimator.

    The decay is expressed as a *time constant* ``tau``: a burst's
    influence falls to 1/e after ``tau`` seconds of silence, giving a
    well-defined behaviour under irregular packet arrivals.
    """

    def __init__(self, tau: float = 0.01):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self._rate = 0.0
        self._last_time = -1.0

    def observe(self, time: float, amount: float) -> float:
        """Fold in *amount* units observed at *time*; returns the rate."""
        if self._last_time < 0:
            # First sample: there is no previous arrival to measure an
            # interval against, but discarding the amount would bias
            # short-flow estimates low. Treat it as an impulse over the
            # time constant, exactly like the same-instant branch.
            self._last_time = time
            self._rate = amount / self.tau
            return self._rate
        dt = time - self._last_time
        self._last_time = time
        if dt <= 0:
            # Same-instant arrivals: treat as an impulse spread over a
            # negligible interval to avoid division by zero.
            self._rate += amount / self.tau
            return self._rate
        alpha = 1.0 - math.exp(-dt / self.tau)
        instantaneous = amount / dt
        self._rate += alpha * (instantaneous - self._rate)
        return self._rate

    def rate(self, time: float) -> float:
        """Decayed estimate at *time* without adding a sample."""
        if self._last_time < 0:
            return 0.0
        dt = max(0.0, time - self._last_time)
        return self._rate * math.exp(-dt / self.tau)


class WindowedRate:
    """Amount-over-interval estimator (the paper's Γ, Eq. 3).

    Accumulates amounts between explicit epoch boundaries; calling
    :meth:`roll` closes the current interval and returns
    ``accumulated / ΔT``. This mirrors how FlowValve evaluates a
    class's token consumption rate at every bucket replenishment.
    """

    def __init__(self, start_time: float = 0.0):
        self._epoch_start = start_time
        self._accumulated = 0.0
        self._last_rate = 0.0

    @property
    def last_rate(self) -> float:
        """Rate measured over the most recently closed interval."""
        return self._last_rate

    @property
    def pending(self) -> float:
        """Amount accumulated in the currently open interval."""
        return self._accumulated

    def observe(self, amount: float) -> None:
        """Accumulate *amount* into the open interval."""
        self._accumulated += amount

    def roll(self, now: float) -> float:
        """Close the interval at *now*; returns and stores its rate.

        Zero-length intervals return the previous rate unchanged (two
        cores racing to the same update timestamp must not divide by
        zero — on the NFP this is guarded by the update lock).
        """
        dt = now - self._epoch_start
        if dt > 0:
            self._last_rate = self._accumulated / dt
            self._accumulated = 0.0
            self._epoch_start = now
        return self._last_rate

    def reset(self, now: float) -> None:
        """Forget all state (expired-status removal, Subprocedure 3)."""
        self._epoch_start = now
        self._accumulated = 0.0
        self._last_rate = 0.0
