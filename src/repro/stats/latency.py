"""Latency statistics: percentiles, jitter, and summaries.

Backs the Fig. 14 reproduction (one-way delay of each scheduler) and
the paper's observation that FlowValve "almost causes no variations in
delay" — jitter here is the standard deviation of one-way delays, with
percentiles available for tail analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "LatencySummary",
    "summarize_latencies",
    "percentile",
    "percentile_sorted",
    "jitter",
]


def percentile(samples: Sequence[float], p: float) -> float:
    """The *p*-th percentile (0..100) using linear interpolation.

    Matches numpy's default ("linear") method so results are directly
    comparable with offline analysis. Raises ``ValueError`` on empty
    input or out-of-range *p*.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    return percentile_sorted(sorted(samples), p)


def percentile_sorted(ordered: Sequence[float], p: float) -> float:
    """:func:`percentile` over an already-sorted sample list.

    Callers computing several percentiles (``summarize_latencies``)
    sort once and thread the ordered list through.
    """
    if not ordered:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    # Lerp form: exact at both endpoints, never rounds outside
    # [ordered[lo], ordered[hi]] the way the weighted-sum form can.
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


def jitter(samples: Sequence[float]) -> float:
    """Population standard deviation of the samples (0 for n < 2)."""
    n = len(samples)
    if n < 2:
        return 0.0
    mean = sum(samples) / n
    variance = sum((s - mean) ** 2 for s in samples) / n
    return math.sqrt(variance)


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of one-way delay samples."""

    count: int
    mean: float
    p50: float
    p99: float
    maximum: float
    minimum: float
    jitter: float

    def scaled(self, factor: float) -> "LatencySummary":
        """A copy with every time field multiplied by *factor*.

        Used to translate delays measured in rate-scaled experiments
        back to nominal units (see DESIGN.md scaling note).
        """
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p99=self.p99 * factor,
            maximum=self.maximum * factor,
            minimum=self.minimum * factor,
            jitter=self.jitter * factor,
        )


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Build a :class:`LatencySummary`; empty input gives all-zeros.

    The samples are sorted once and every order statistic (both
    percentiles, min, max) reads the same ordered list.
    """
    if not samples:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile_sorted(ordered, 50),
        p99=percentile_sorted(ordered, 99),
        maximum=ordered[-1],
        minimum=ordered[0],
        jitter=jitter(ordered),
    )
